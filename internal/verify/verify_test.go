package verify

import (
	"testing"

	"vsd/internal/bv"
	"vsd/internal/click"
	"vsd/internal/dataplane"
	"vsd/internal/elements"
	"vsd/internal/expr"
	"vsd/internal/ir"
	"vsd/internal/packet"
	"vsd/internal/symbex"
)

func parsePipeline(t *testing.T, src string) *click.Pipeline {
	t.Helper()
	p, err := click.Parse(elements.Default(), src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newVerifier(maxLen uint64) *Verifier {
	return New(Options{MinLen: packet.MinFrame, MaxLen: maxLen})
}

// TestFig2Pipeline reproduces the paper's Fig. 2 walkthrough: ToyE2's
// assertion makes segment e3 suspect in isolation, but composed after
// ToyE1 both crashing paths (p1, p4) are infeasible and the pipeline is
// proved crash-free.
func TestFig2PipelineCrashFree(t *testing.T) {
	p := parsePipeline(t, `
		src :: InfiniteSource;
		e1 :: ToyE1;
		e2 :: ToyE2;
		sink :: Discard;
		src -> e1 -> e2 -> sink;
	`)
	v := newVerifier(64)
	rep, err := v.CrashFreedom(p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("Fig. 2 pipeline not verified; witnesses: %v", rep.Witnesses)
	}
	st := v.Stats()
	if st.Suspects == 0 {
		t.Error("expected ToyE2's e3 segment to be tagged suspect in Step 1")
	}
	if st.ComposedInfeasible == 0 {
		t.Error("expected the p1/p4 stitched paths to be discharged as infeasible")
	}
}

// TestFig2E2AloneCrashes is the counterpoint: without ToyE1 upstream the
// suspect is realizable, and the witness actually crashes the runtime.
func TestFig2E2AloneCrashes(t *testing.T) {
	p := parsePipeline(t, `
		src :: InfiniteSource;
		e2 :: ToyE2;
		sink :: Discard;
		src -> e2 -> sink;
	`)
	v := newVerifier(64)
	rep, err := v.CrashFreedom(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified {
		t.Fatal("ToyE2 alone must not verify")
	}
	if len(rep.Witnesses) == 0 {
		t.Fatal("no witness produced")
	}
	// Replay every witness on the concrete runtime: each must crash.
	for _, w := range rep.Witnesses {
		runner := dataplane.NewRunner(p)
		res := runner.Process(packet.NewBuffer(append([]byte{}, w.Packet...)))
		if res.Disposition != ir.Crashed {
			t.Errorf("witness % x did not crash the runtime: %+v", w.Packet, res)
		}
	}
}

// ipRouterConfig is the paper's evaluation pipeline: the default Click
// IP-router elements. NOCHECKSUM keeps the unit test fast; the checksum
// variant runs in the long test below and in the benchmarks.
const ipRouterConfig = `
	src :: InfiniteSource;
	cls :: Classifier(12/0800, -);
	strip :: Strip(14);
	chk :: CheckIPHeader(NOCHECKSUM);
	opt :: IPOptions;
	rt :: LookupIPRoute(10.0.0.0/8 0, 192.168.0.0/16 1, 0.0.0.0/0 2);
	ttl :: DecIPTTL;
	encap :: EtherEncap(0800, 02:00:00:00:00:01, 02:00:00:00:00:02);
	bad :: Discard;

	src -> cls;
	cls [0] -> strip -> chk;
	cls [1] -> Discard;
	chk [0] -> opt;
	chk [1] -> bad;
	opt [0] -> rt;
	opt [1] -> bad;
	rt [0] -> ttl;
	rt [1] -> ttl;
	rt [2] -> ttl;
	ttl [0] -> encap;
	ttl [1] -> Discard;
`

func TestIPRouterCrashFreedom(t *testing.T) {
	// E1 from the paper's evaluation: the pipeline built from the
	// default IP-router elements never crashes, for any packet. Several
	// elements are suspect in isolation (DecIPTTL, LookupIPRoute, and
	// EtherEncap read or write without bounds checks); composition after
	// CheckIPHeader discharges all of them.
	p := parsePipeline(t, ipRouterConfig)
	v := newVerifier(40)
	rep, err := v.CrashFreedom(p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		for _, w := range rep.Witnesses {
			t.Logf("witness:\n%s", FormatWitness(w))
		}
		t.Fatal("IP router not crash-free")
	}
	st := v.Stats()
	if st.Suspects == 0 {
		t.Error("expected suspects in isolation (unchecked header reads)")
	}
	t.Logf("stats: %+v", st)
}

func TestIPRouterInstructionBound(t *testing.T) {
	// E2 from the paper: the longest pipeline executes at most ~3600
	// instructions per packet, and the verifier names the packet. Our
	// IR statement counts differ from x86 instruction counts; the claim
	// reproduced is the existence of a finite bound plus a witness that
	// attains it exactly.
	p := parsePipeline(t, ipRouterConfig)
	v := newVerifier(40)
	rep, err := v.BoundedInstructions(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CrashPossible {
		t.Fatal("router unexpectedly crashable")
	}
	if rep.MaxSteps <= 0 {
		t.Fatal("no instruction bound computed")
	}
	// The bound must not exceed the static worst case of the inlined
	// program.
	inlined, err := click.Inline(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxSteps > inlined.MaxStmts() {
		t.Errorf("bound %d exceeds static maximum %d", rep.MaxSteps, inlined.MaxStmts())
	}
	// The witness packet, replayed concretely, attains the bound
	// exactly.
	runner := dataplane.NewRunner(p)
	res := runner.Process(packet.NewBuffer(append([]byte{}, rep.Witness.Packet...)))
	if res.Disposition == ir.Crashed {
		t.Fatalf("witness crashed the runtime: %+v", res)
	}
	if res.Steps > rep.MaxSteps {
		t.Errorf("witness executes %d statements, above the bound %d", res.Steps, rep.MaxSteps)
	}
	if !v.Stats().SymbexStats.Merged && res.Steps != rep.MaxSteps {
		t.Errorf("exact mode: witness executes %d statements, bound says %d", res.Steps, rep.MaxSteps)
	}
	t.Logf("instruction bound: %d, witness %d bytes", rep.MaxSteps, len(rep.Witness.Packet))
}

func TestComposedAgreesWithMonolithic(t *testing.T) {
	// The composed verdict and the whole-pipeline baseline must agree on
	// stateless pipelines (the baseline treats unconstrained state reads
	// as free, so stateful discharge is compositional-only by design).
	configs := []struct {
		name string
		src  string
	}{
		{"fig2", "s :: InfiniteSource; s -> ToyE1 -> ToyE2 -> Discard;"},
		{"e2 alone", "s :: InfiniteSource; s -> ToyE2 -> Discard;"},
		{"strip+check", "s :: InfiniteSource; s -> Strip(14) -> CheckIPHeader(NOCHECKSUM) -> Discard;"},
		{"unsafe reader", "s :: InfiniteSource; s -> UnsafeReader(16) -> Discard;"},
	}
	for _, c := range configs {
		t.Run(c.name, func(t *testing.T) {
			p := parsePipeline(t, c.src)
			v := newVerifier(64)
			rep, err := v.CrashFreedom(p)
			if err != nil {
				t.Fatal(err)
			}
			mono, err := Monolithic(p, Options{MinLen: packet.MinFrame, MaxLen: 64})
			if err != nil {
				t.Fatal(err)
			}
			if !mono.Completed {
				t.Fatalf("monolithic did not complete: %s", mono.BudgetReached)
			}
			if rep.Verified != (mono.Crashes == 0) {
				t.Fatalf("composed verified=%v but monolithic found %d crashes",
					rep.Verified, mono.Crashes)
			}
			// Maximum instruction counts agree too.
			bound, err := v.BoundedInstructions(p)
			if err != nil {
				t.Fatal(err)
			}
			if bound.MaxSteps != mono.MaxSteps {
				t.Fatalf("composed bound %d != monolithic bound %d", bound.MaxSteps, mono.MaxSteps)
			}
		})
	}
}

func TestReachability(t *testing.T) {
	p := parsePipeline(t, `
		src :: InfiniteSource;
		cls :: Classifier(12/0800, -);
		ip :: Strip(14);
		src -> cls;
		cls [0] -> ip;
		// cls[1] and ip[0] are egresses 0 and 1
	`)
	v := newVerifier(64)
	pkt := expr.BaseArray(symbex.PktArrayName)
	isIPv4 := []*expr.Expr{
		expr.Eq(expr.Select(pkt, expr.Const(32, 12)), expr.Const(8, 0x08)),
		expr.Eq(expr.Select(pkt, expr.Const(32, 13)), expr.Const(8, 0x00)),
	}
	// Property: every IPv4-ethertype packet leaves through the IP path.
	ipEgress := p.EgressID(2, 0) // ip element, port 0
	rep, err := v.Reachability(p, ReachSpec{
		Name:         "ipv4-to-ip-path",
		Assume:       isIPv4,
		AcceptEgress: func(e int) bool { return e == ipEgress },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("reachability failed: %v", rep.Witnesses)
	}
	// The negation must fail and produce an IPv4 witness that indeed
	// exits on the classifier's catch-all... i.e. property "ipv4 goes to
	// catch-all" is violated by every IPv4 packet.
	rep2, err := v.Reachability(p, ReachSpec{
		Name:         "ipv4-to-catchall (expected to fail)",
		Assume:       isIPv4,
		AcceptEgress: func(e int) bool { return e != ipEgress },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Verified {
		t.Fatal("impossible property verified")
	}
	w := rep2.Witnesses[0]
	if len(w.Packet) < 14 || w.Packet[12] != 0x08 || w.Packet[13] != 0x00 {
		t.Errorf("witness does not satisfy the assumption: % x", w.Packet)
	}
}

func TestStatefulCounterOverflow(t *testing.T) {
	// The paper's counter-overflow example: the unsafe counter asserts
	// it never wraps, and the data-structure analysis finds the bad
	// value (max) reachable via the element's own writes.
	unsafe := parsePipeline(t, "s :: InfiniteSource; s -> Counter -> Discard;")
	v := newVerifier(64)
	rep, err := v.CrashFreedom(unsafe)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified {
		t.Fatal("unsafe counter verified; overflow missed")
	}

	// The saturating counter never writes the bad value, so the same
	// suspect is discharged and the pipeline verifies.
	safe := parsePipeline(t, "s :: InfiniteSource; s -> Counter(SATURATE) -> Discard;")
	v2 := newVerifier(64)
	rep2, err := v2.CrashFreedom(safe)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Verified {
		t.Fatalf("saturating counter not verified: %v", rep2.Witnesses)
	}
}

func TestStatefulDischargeUnwritableBadValue(t *testing.T) {
	// A custom element whose assertion can only fail if the store holds
	// 7 — but the element only ever writes 5. The refinement must
	// discharge the suspect and verify the pipeline.
	b := ir.NewBuilder("OnlyFives", 1, 1)
	b.DeclareState(ir.StateDecl{Name: "vals", KeyW: 8, ValW: 8, Default: 0})
	k := b.ConstU(8, 0)
	vreg := b.StateRead("vals", k)
	b.Assert(b.Not(b.BinC(ir.Eq, vreg, 7)), "value 7 is impossible")
	b.StateWrite("vals", k, b.ConstU(8, 5))
	b.Emit(0)
	prog := b.MustBuild()

	srcProg, err := elements.InfiniteSource("")
	if err != nil {
		t.Fatal(err)
	}
	sinkProg, err := elements.Discard("")
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := click.Build([]*click.Instance{
		click.NewInstance("src", "InfiniteSource", "", srcProg),
		click.NewInstance("of", "OnlyFives", "", prog),
		click.NewInstance("sink", "Discard", "", sinkProg),
	}, []click.Connection{{From: 0, FromPort: 0, To: 1}, {From: 1, FromPort: 0, To: 2}})
	if err != nil {
		t.Fatal(err)
	}
	v := newVerifier(64)
	rep, err := v.CrashFreedom(pipe)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("unwritable bad value not discharged: %v", rep.Witnesses)
	}
	if rep.Discharged == 0 {
		t.Error("expected a discharged suspect in the report")
	}
}

func TestSummaryCacheSharesAcrossPositions(t *testing.T) {
	// The same element class+config at two pipeline positions is
	// summarized once ("we process each element once, even if it may be
	// called from different points in the pipeline").
	src := `
		s :: InfiniteSource;
		a :: Strip(7);
		b :: Strip(7);
		s -> a -> b -> Discard;
	`
	p := parsePipeline(t, src)
	v := newVerifier(64)
	if _, err := v.CrashFreedom(p); err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.SummaryCacheHits == 0 {
		t.Errorf("no cache hits; stats = %+v", st)
	}
	// Ablation: with the cache disabled every position re-summarizes.
	v2 := New(Options{MinLen: packet.MinFrame, MaxLen: 64, DisableSummaryCache: true})
	if _, err := v2.CrashFreedom(p); err != nil {
		t.Fatal(err)
	}
	if v2.Stats().ElementsSummarized <= st.ElementsSummarized {
		t.Errorf("cache ablation did not increase summarization work: %d vs %d",
			v2.Stats().ElementsSummarized, st.ElementsSummarized)
	}
}

func TestUnsafeReaderWitnessReplay(t *testing.T) {
	// The app-market scenario end to end: the buggy element is rejected
	// with a witness that crashes the runtime; the fixed element
	// verifies.
	buggy := parsePipeline(t, "s :: InfiniteSource; s -> UnsafeReader(16) -> Discard;")
	v := newVerifier(64)
	rep, err := v.CrashFreedom(buggy)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified {
		t.Fatal("UnsafeReader verified")
	}
	runner := dataplane.NewRunner(buggy)
	res := runner.Process(packet.NewBuffer(append([]byte{}, rep.Witnesses[0].Packet...)))
	if res.Disposition != ir.Crashed || res.Crash.Kind != ir.CrashOOB {
		t.Fatalf("witness replay: %+v, want OOB crash", res)
	}

	fixed := parsePipeline(t, "s :: InfiniteSource; s -> FixedReader(16) -> Discard;")
	rep2, err := newVerifier(64).CrashFreedom(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Verified {
		t.Fatalf("FixedReader not verified: %v", rep2.Witnesses)
	}
}

func TestVerifierStatsAndPre(t *testing.T) {
	v := newVerifier(64)
	pre := v.Pre()
	if len(pre) != 2 {
		t.Fatalf("Pre() = %v", pre)
	}
	// minLen <= len <= maxLen must hold of any witness packet length.
	asn := expr.NewAssignment()
	asn.Vars[symbex.PktLenVar] = bv.New(32, 64)
	for _, c := range pre {
		if !expr.Eval(c, asn).IsTrue() {
			t.Errorf("len=64 violates precondition %s", c)
		}
	}
}
