package verify

import (
	"encoding/hex"
	"testing"

	"vsd/internal/dataplane"
	"vsd/internal/expr"
	"vsd/internal/ir"
	"vsd/internal/packet"
)

func TestBatchDeduplicatesAndShares(t *testing.T) {
	safe := `
		src :: InfiniteSource;
		src -> Strip(14) -> chk :: CheckIPHeader(NOCHECKSUM);
		chk[0] -> ttl :: DecIPTTL; chk[1] -> Discard;
		ttl[1] -> Discard;`
	// Same pipeline, same instance names — a resubmission.
	unsafe := `s :: InfiniteSource; s -> UnsafeReader(30) -> Discard;`
	items := []BatchItem{
		{Name: "a.click", Pipeline: parsePipeline(t, safe)},
		{Name: "bad.click", Pipeline: parsePipeline(t, unsafe)},
		{Name: "a-again.click", Pipeline: parsePipeline(t, safe)},
	}
	verdicts, st, _ := Batch(items, Options{MinLen: packet.MinFrame, MaxLen: 48})
	if len(verdicts) != 3 {
		t.Fatalf("got %d verdicts", len(verdicts))
	}
	a, bad, again := verdicts[0], verdicts[1], verdicts[2]
	if !a.Certified || a.DuplicateOf != "" {
		t.Errorf("a: %+v", a)
	}
	if bad.Certified || bad.CrashFree || len(bad.Witnesses) == 0 {
		t.Errorf("bad: %+v", bad)
	}
	if again.DuplicateOf != "a.click" {
		t.Errorf("resubmission not deduplicated: %+v", again)
	}
	if again.Name != "a-again.click" || again.Certified != a.Certified ||
		again.Fingerprint != a.Fingerprint || again.BoundSteps != a.BoundSteps {
		t.Errorf("duplicate verdict diverges: %+v vs %+v", again, a)
	}
	// The shared verifier reuses summaries across submissions: the
	// duplicate costs nothing and the distinct pipelines share classes.
	if st.SummaryCacheHits == 0 {
		t.Error("batch did not share any summaries")
	}
	// A rejection witness must be a real crash on the rejected pipeline.
	pkt, err := hex.DecodeString(bad.Witnesses[0].Packet)
	if err != nil {
		t.Fatal(err)
	}
	res := dataplane.NewRunner(items[1].Pipeline).Process(packet.NewBuffer(pkt))
	if res.Disposition != ir.Crashed {
		t.Errorf("batch witness did not crash the pipeline: %+v", res)
	}
}

func TestBatchSpecGate(t *testing.T) {
	src := `
		src :: InfiniteSource;
		src -> Strip(14) -> chk :: CheckIPHeader(NOCHECKSUM);
		chk[0] -> ttl :: DecIPTTL; chk[1] -> Discard;
		ttl[1] -> Discard;`
	// A vacuous contract and an unsatisfiable one: the same pipeline
	// must certify under the first and be rejected under the second —
	// and the two submissions must NOT deduplicate (same fingerprint,
	// different spec lists).
	pass := FuncSpec{Name: "pass", Post: func(pi *PathInfo) *expr.Expr { return expr.True() }}
	fail := FuncSpec{Name: "fail", Post: func(pi *PathInfo) *expr.Expr {
		if !pi.Emitted() {
			return nil
		}
		return expr.False()
	}}
	items := []BatchItem{
		{Name: "with-pass", Pipeline: parsePipeline(t, src), Specs: []FuncSpec{pass}},
		{Name: "with-fail", Pipeline: parsePipeline(t, src), Specs: []FuncSpec{fail}},
	}
	verdicts, _, _ := Batch(items, Options{MinLen: packet.MinFrame, MaxLen: 48})
	ok, bad := verdicts[0], verdicts[1]
	if !ok.Certified || len(ok.SpecsPassed) != 1 {
		t.Errorf("with-pass: %+v", ok)
	}
	if bad.DuplicateOf != "" {
		t.Error("different spec lists must not deduplicate")
	}
	if bad.Certified || !bad.CrashFree || len(bad.SpecsFailed) != 1 {
		t.Errorf("with-fail: %+v", bad)
	}
	if bad.Fingerprint != ok.Fingerprint {
		t.Error("same pipeline must share a fingerprint across spec lists")
	}
}

func TestBatchInductionResults(t *testing.T) {
	items := []BatchItem{
		{Name: "sat.click", Pipeline: parsePipeline(t, `
			src :: InfiniteSource;
			cnt :: Counter(SATURATE);
			src -> cnt -> Discard;`)},
		{Name: "overflow.click", Pipeline: parsePipeline(t, `
			src :: InfiniteSource;
			cnt :: Counter;
			src -> cnt -> Discard;`)},
		{Name: "bucket.click", Pipeline: parsePipeline(t, `
			src :: InfiniteSource;
			tb :: TokenBucket(2);
			src -> tb; tb[1] -> Discard;`),
			Invariants: []StateInvariant{{
				Name: "token-level-bound",
				Pred: func(sv *StateView) *expr.Expr {
					return expr.Ule(sv.Read("tb.tokens", expr.Const(8, 0)), expr.Const(32, 2))
				},
			}},
		},
	}
	verdicts, _, _ := Batch(items, Options{MinLen: packet.MinFrame, MaxLen: 48})
	sat, overflow, bucket := verdicts[0], verdicts[1], verdicts[2]

	// Saturating counter: certified, and the verdict carries the
	// UNBOUNDED crash-freedom proof the single-packet gate cannot give.
	if !sat.Certified || len(sat.Induction) != 1 {
		t.Fatalf("sat: %+v", sat)
	}
	if got := sat.Induction[0]; got.Invariant != "crash-freedom" || !got.Proved || got.K != 1 {
		t.Errorf("sat induction: %+v", got)
	}

	// Plain counter: rejected by the single-packet gate already, and the
	// induction result records the CTI evidence.
	if overflow.Certified || overflow.CrashFree {
		t.Fatalf("overflow: %+v", overflow)
	}
	if got := overflow.Induction[0]; got.Proved || !got.CTI || got.WitnessPackets < 2 {
		t.Errorf("overflow induction: %+v", got)
	}

	// Attached invariant: proved, listed per invariant.
	if !bucket.Certified || len(bucket.Induction) != 2 {
		t.Fatalf("bucket: %+v", bucket)
	}
	if got := bucket.Induction[1]; got.Invariant != "token-level-bound" || !got.Proved {
		t.Errorf("bucket invariant: %+v", got)
	}
	// Invariant-carrying items must not be deduplicated against each
	// other (closures have no identity); spec-free identical items are.
	again, _, _ := Batch([]BatchItem{items[2], items[2]}, Options{MinLen: packet.MinFrame, MaxLen: 48})
	if again[1].DuplicateOf != "" {
		t.Errorf("invariant-carrying item deduplicated: %+v", again[1])
	}
}
