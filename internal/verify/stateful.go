package verify

import (
	"strings"

	"vsd/internal/click"
	"vsd/internal/expr"
	"vsd/internal/smt"
	"vsd/internal/symbex"
)

// This file implements the paper's data-structure verification
// refinement. Step 1 models every private-state read as an
// unconstrained symbolic value ("a read may return either a value that
// was previously written in the data structure or a default value").
// That over-approximation can tag crash paths that no execution
// realizes: the crash needs a "bad" value in the store, but nothing can
// ever write one. The refinement is the paper's second phase: "go back
// and check whether any input to the element may have caused any of
// these bad values to be written to the data structure in the first
// place."

// maxRefinedReads resolves Options.MaxRefinedReads: the cap on the
// combination search. Paths reading more state values than this stay
// suspect (sound: we only ever discharge paths we can prove
// unrealizable) and are counted in Stats.RefinementTruncated so batch
// runs can report how much refinement was skipped.
func (v *Verifier) maxRefinedReads() int {
	if v.opts.MaxRefinedReads > 0 {
		return v.opts.MaxRefinedReads
	}
	return DefaultMaxRefinedReads
}

// statefulRealizable decides whether a crashing composed path is
// realizable given what can actually be written to private state. It
// returns true (keep the witness) unless every source combination —
// store defaults and all reachable writes — fails to satisfy the path
// constraint.
func (v *Verifier) statefulRealizable(p *click.Pipeline, st *composed) (bool, error) {
	// Which state-read variables does the path constraint mention?
	var used []symbex.StateAccess
	mentioned := map[string]bool{}
	for _, c := range st.conds {
		for _, vr := range expr.Vars(c, nil) {
			mentioned[vr.Name] = true
		}
	}
	for _, rd := range st.reads {
		if mentioned[rd.Var.Name] {
			used = append(used, rd)
		}
	}
	if len(used) == 0 {
		return true, nil // crash does not depend on state
	}
	if len(used) > v.maxRefinedReads() {
		// Too many reads; keep suspect (over-approximate) and report the
		// truncation. Runs under visitMu, so the plain counter is safe,
		// but Stats() snapshots under v.mu — take it for the increment.
		v.mu.Lock()
		v.stats.RefinementTruncated++
		v.mu.Unlock()
		return true, nil
	}
	// Candidate value sources per read: the store default, any write of
	// the same store in any segment of the owning element (from a
	// previous packet), and any earlier write on this same path (same
	// packet).
	sources := make([][]valueSource, len(used))
	for i, rd := range used {
		s, err := v.valueSources(p, st, rd)
		if err != nil {
			return false, err
		}
		sources[i] = s
	}
	// Try every combination; the crash is realizable iff some
	// combination keeps the path satisfiable.
	return v.anyCombinationFeasible(st, used, sources, 0, expr.NewSubst(), nil)
}

// valueSource is one way a state read could have obtained its value.
type valueSource struct {
	val *expr.Expr // value expression (inputs renamed to a fresh scope)
	// pre are additional constraints that must hold for this source
	// (the writing segment's path constraint and key equality).
	pre []*expr.Expr
}

// valueSources enumerates what the read rd could have returned.
func (v *Verifier) valueSources(p *click.Pipeline, st *composed, rd symbex.StateAccess) ([]valueSource, error) {
	// Store names on the path are instance-qualified: "inst.store".
	dot := strings.Index(rd.Store, ".")
	instName, storeName := rd.Store[:dot], rd.Store[dot+1:]
	var elem *click.Instance
	for _, e := range p.Elements {
		if e.Name() == instName {
			elem = e
			break
		}
	}
	decl, _ := elem.Program().StateDeclByName(storeName)
	// Source 1: the default value (key never written).
	out := []valueSource{{val: expr.Const(decl.ValW, decl.Default)}}
	// Source 2: earlier writes on this same path (same packet).
	for _, wr := range st.writes {
		if wr.Store != rd.Store {
			continue
		}
		out = append(out, valueSource{
			val: wr.Val,
			pre: []*expr.Expr{expr.Eq(wr.Key, rd.Key)},
		})
	}
	// Source 3: writes by any segment of the owning element, performed
	// while processing an earlier packet. That packet is independent of
	// the current one, so every input variable of the writing segment is
	// renamed into a fresh "w.<n>." scope.
	segs, err := v.Summarize(elem)
	if err != nil {
		return nil, err
	}
	scope := 0
	for _, seg := range segs {
		for _, wr := range seg.Writes {
			if wr.Store != storeName {
				continue
			}
			sub := renameScope(seg, scope)
			scope++
			var pre []*expr.Expr
			for _, c := range seg.Cond {
				pre = append(pre, sub.Apply(c))
			}
			out = append(out, valueSource{val: sub.Apply(wr.Val), pre: pre})
		}
	}
	return out, nil
}

// renameScope builds a substitution renaming a segment's input variables
// (packet array, length, metadata, state reads) into a fresh scope so
// constraints about a previous packet do not collide with the current
// one.
func renameScope(seg *symbex.Segment, scope int) *expr.Subst {
	prefix := "w" + itoa(scope) + "."
	sub := expr.NewSubst()
	sub.BindArr(symbex.PktArrayName, expr.BaseArray(prefix+symbex.PktArrayName))
	sub.BindVar(symbex.PktLenVar, expr.Var(prefix+symbex.PktLenVar, 32))
	seen := map[string]bool{}
	for _, c := range seg.Cond {
		for _, vr := range expr.Vars(c, nil) {
			if seen[vr.Name] || vr.Name == symbex.PktLenVar {
				continue
			}
			seen[vr.Name] = true
			sub.BindVar(vr.Name, expr.Var(prefix+vr.Name, vr.Width()))
		}
	}
	for _, wr := range seg.Writes {
		for _, vr := range expr.Vars(wr.Val, nil) {
			if !seen[vr.Name] && vr.Name != symbex.PktLenVar {
				seen[vr.Name] = true
				sub.BindVar(vr.Name, expr.Var(prefix+vr.Name, vr.Width()))
			}
		}
	}
	return sub
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// anyCombinationFeasible substitutes one source per read and asks the
// solver whether the crash path survives.
func (v *Verifier) anyCombinationFeasible(st *composed, used []symbex.StateAccess,
	sources [][]valueSource, idx int, sub *expr.Subst, pre []*expr.Expr) (bool, error) {
	if idx == len(used) {
		cons := append([]*expr.Expr{}, v.Pre()...)
		cons = append(cons, pre...)
		for _, c := range st.conds {
			cons = append(cons, sub.Apply(c))
		}
		v.solverQueries.Add(1)
		sp, started := v.tel.beginSolve(v.rootSession, "refine", "")
		r, _ := v.rootSession.Check(cons)
		v.tel.recordSolve(v.rootSession, "refine", "stateful-refine", started, sp)
		return r != smt.Unsat, nil
	}
	for _, src := range sources[idx] {
		s2 := expr.NewSubst()
		for k, val := range sub.Vars {
			s2.BindVar(k, val)
		}
		for k, a := range sub.Arrs {
			s2.BindArr(k, a)
		}
		s2.BindVar(used[idx].Var.Name, src.val)
		ok, err := v.anyCombinationFeasible(st, used, sources, idx+1, s2, append(pre, src.pre...))
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}
