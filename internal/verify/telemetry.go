package verify

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"vsd/internal/smt"
	"vsd/internal/telemetry"
)

// vtel is the verifier's telemetry state. It always exists (New builds
// one) so the hot paths never nil-check the container itself; instead
// every component inside is individually nil-safe. With no tracer, no
// registry and no profiler configured, the per-solve overhead is the
// histogram record (a few atomic adds) and nothing else.
type vtel struct {
	tracer *telemetry.Tracer
	main   *telemetry.Lane // property entry points and Step-2 phases
	prof   *obligationProfiler

	// solveHist and summarizeHist are always allocated: solve-time
	// percentiles are part of Stats (the BENCH tail-regression fix),
	// not an opt-in. When a Registry is configured they are the
	// registry's own instances, so /metrics and Stats agree by
	// construction.
	solveHist     *telemetry.Histogram
	summarizeHist *telemetry.Histogram
	storeLoads    *telemetry.Counter
	storeSaves    *telemetry.Counter

	// Worker lanes are pooled: a goroutine holds a lane for the
	// duration of one sequential stretch of work, which preserves the
	// strict span nesting the trace format wants per lane.
	laneMu    sync.Mutex
	freeLanes []*telemetry.Lane
	laneCount int

	// sessLane associates each checked-out solver session with the
	// lane of the goroutine driving it, so the central solve point
	// (feasible, recordSolve) can attach obligation spans to the right
	// lane without threading a lane through every signature.
	sessLane sync.Map // *smt.IncrementalSession -> *telemetry.Lane
}

func newVtel(opts Options) *vtel {
	t := &vtel{tracer: opts.Trace}
	t.main = t.tracer.Lane("verify-main")
	if opts.Metrics != nil {
		t.solveHist = opts.Metrics.Histogram("vsd_solve_duration_seconds",
			"wall time of individual Step-2 solver queries", 1e9)
		t.summarizeHist = opts.Metrics.Histogram("vsd_summarize_duration_seconds",
			"wall time of Step-1 element summarizations", 1e9)
		t.storeLoads = opts.Metrics.Counter("vsd_store_loads_total",
			"summary-store loads that hit")
		t.storeSaves = opts.Metrics.Counter("vsd_store_saves_total",
			"summary-store saves after fresh summarization")
	} else {
		t.solveHist = telemetry.NewHistogram()
		t.summarizeHist = telemetry.NewHistogram()
	}
	if opts.Profile {
		t.prof = &obligationProfiler{byName: map[string]*ObligationStat{}}
	}
	return t
}

// active reports whether per-obligation labels are worth building:
// they feed the tracer and the profiler, and cost a string allocation
// per stitch, so the walk skips them when neither consumer exists.
func (t *vtel) active() bool { return t.tracer != nil || t.prof != nil }

// getLane checks a worker lane out of the pool (nil when not tracing).
func (t *vtel) getLane() *telemetry.Lane {
	if t.tracer == nil {
		return nil
	}
	t.laneMu.Lock()
	defer t.laneMu.Unlock()
	if n := len(t.freeLanes); n > 0 {
		l := t.freeLanes[n-1]
		t.freeLanes = t.freeLanes[:n-1]
		return l
	}
	t.laneCount++
	return t.tracer.Lane(fmt.Sprintf("worker-%d", t.laneCount-1))
}

func (t *vtel) putLane(l *telemetry.Lane) {
	if l == nil {
		return
	}
	t.laneMu.Lock()
	t.freeLanes = append(t.freeLanes, l)
	t.laneMu.Unlock()
}

// bindSession routes obligation spans solved on sess to lane.
func (t *vtel) bindSession(sess *smt.IncrementalSession, lane *telemetry.Lane) {
	if t.tracer == nil || sess == nil {
		return
	}
	if lane == nil {
		t.sessLane.Delete(sess)
		return
	}
	t.sessLane.Store(sess, lane)
}

func (t *vtel) laneFor(sess *smt.IncrementalSession) *telemetry.Lane {
	if t.tracer == nil {
		return nil
	}
	if l, ok := t.sessLane.Load(sess); ok {
		return l.(*telemetry.Lane)
	}
	return nil
}

// recordSolve is the single attribution point for one solver query:
// it folds the query's SolveInfo into the always-on latency histogram,
// the obligation profiler, and (when the session's goroutine has a
// lane) a trace span tagged with verdict and search effort.
func (t *vtel) recordSolve(sess *smt.IncrementalSession, kind, name string, started bool, sp telemetry.Span) {
	info := sess.LastSolve()
	t.solveHist.Record(int64(info.Duration))
	if t.prof != nil && name != "" {
		t.prof.record(kind, name, info)
	}
	if started {
		sp.SetStr("verdict", info.Result.String())
		if info.SATCore {
			sp.SetInt("conflicts", info.Conflicts)
			sp.SetInt("decisions", info.Decisions)
			sp.SetInt("cnf_vars", info.CNFVars)
			sp.SetInt("cnf_clauses", info.CNFClauses)
		}
		sp.End()
	}
}

// beginSolve opens the obligation span for a query about to run on
// sess. started=false (zero span) when tracing is off for this
// session; the span name is built only then, so the disabled path
// stays allocation-free.
func (t *vtel) beginSolve(sess *smt.IncrementalSession, kind, name string) (telemetry.Span, bool) {
	lane := t.laneFor(sess)
	if lane == nil {
		return telemetry.Span{}, false
	}
	if name == "" {
		name = kind
	}
	return lane.Begin(kind, "solve:"+name), true
}

// ObligationStat aggregates the solver cost attributed to one named
// obligation (one stitched-path feasibility query site, one witness
// extraction, one induction step...).
type ObligationStat struct {
	Kind       string
	Name       string
	Queries    int64
	SATCore    int64 // queries that actually engaged the SAT core
	WallNS     int64
	Conflicts  int64
	Decisions  int64
	CNFVars    int64
	CNFClauses int64
	Unsat      int64
	Sat        int64
	Unknown    int64
}

// obligationProfiler aggregates per-obligation SolveInfo. A plain
// mutex is fine here: profiling is opt-in (-profile) and the map
// update is tiny next to the solves it measures.
type obligationProfiler struct {
	mu     sync.Mutex
	byName map[string]*ObligationStat
}

func (p *obligationProfiler) record(kind, name string, info smt.SolveInfo) {
	p.mu.Lock()
	st, ok := p.byName[name]
	if !ok {
		st = &ObligationStat{Kind: kind, Name: name}
		p.byName[name] = st
	}
	st.Queries++
	st.WallNS += int64(info.Duration)
	if info.SATCore {
		st.SATCore++
		st.Conflicts += info.Conflicts
		st.Decisions += info.Decisions
		st.CNFVars += info.CNFVars
		st.CNFClauses += info.CNFClauses
	}
	switch info.Result {
	case smt.Unsat:
		st.Unsat++
	case smt.Sat:
		st.Sat++
	default:
		st.Unknown++
	}
	p.mu.Unlock()
}

// ObligationProfile returns the accumulated per-obligation stats,
// unordered. Empty (nil) unless Options.Profile was set.
func (v *Verifier) ObligationProfile() []ObligationStat {
	if v.tel.prof == nil {
		return nil
	}
	v.tel.prof.mu.Lock()
	defer v.tel.prof.mu.Unlock()
	out := make([]ObligationStat, 0, len(v.tel.prof.byName))
	for _, st := range v.tel.prof.byName {
		out = append(out, *st)
	}
	return out
}

// FormatObligationProfile renders the top-k obligations three ways —
// by wall time, by conflicts, and by CNF size — as the printable
// table behind `vsdverify -profile`.
func FormatObligationProfile(stats []ObligationStat, k int) string {
	if len(stats) == 0 {
		return "obligation profile: no solver queries recorded\n"
	}
	if k <= 0 {
		k = 10
	}
	var b strings.Builder
	section := func(title string, key func(ObligationStat) int64, val func(ObligationStat) string) {
		s := make([]ObligationStat, len(stats))
		copy(s, stats)
		sort.Slice(s, func(i, j int) bool {
			if a, b := key(s[i]), key(s[j]); a != b {
				return a > b
			}
			return s[i].Name < s[j].Name
		})
		n := k
		if n > len(s) {
			n = len(s)
		}
		fmt.Fprintf(&b, "top %d obligations by %s\n", n, title)
		fmt.Fprintf(&b, "  %-10s %-52s %8s %8s %10s %10s %9s %s\n",
			"KIND", "OBLIGATION", "QUERIES", "SATCORE", "WALL", "CONFLICTS", "CNFVARS", title)
		for _, st := range s[:n] {
			name := st.Name
			if len(name) > 52 {
				name = name[:49] + "..."
			}
			fmt.Fprintf(&b, "  %-10s %-52s %8d %8d %10s %10d %9d %s\n",
				st.Kind, name, st.Queries, st.SATCore,
				time.Duration(st.WallNS).Round(time.Microsecond),
				st.Conflicts, st.CNFVars, val(st))
		}
		b.WriteByte('\n')
	}
	section("wall time",
		func(s ObligationStat) int64 { return s.WallNS },
		func(s ObligationStat) string { return time.Duration(s.WallNS).Round(time.Microsecond).String() })
	section("conflicts",
		func(s ObligationStat) int64 { return s.Conflicts },
		func(s ObligationStat) string { return fmt.Sprintf("%d", s.Conflicts) })
	section("CNF size (vars added)",
		func(s ObligationStat) int64 { return s.CNFVars },
		func(s ObligationStat) string { return fmt.Sprintf("%d", s.CNFVars) })
	return b.String()
}
