package verify

import (
	"testing"

	"vsd/internal/click"
	"vsd/internal/elements"
	"vsd/internal/expr"
	"vsd/internal/ir"
)

func seqVerifier(t *testing.T) *Verifier {
	t.Helper()
	return New(Options{MinLen: 14, MaxLen: 48})
}

func parseSeq(t *testing.T, src string) *click.Pipeline {
	t.Helper()
	p, err := click.Parse(elements.Default(), src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const counterSatConfig = `
	src :: InfiniteSource;
	cnt :: Counter(SATURATE);
	src -> cnt -> Discard;`

const counterOverflowConfig = `
	src :: InfiniteSource;
	cnt :: Counter;
	src -> cnt -> Discard;`

// The saturating counter is crash-free for packet sequences of ANY
// length: the inductive step closes at k=1 with zero unrolling — the
// single-packet analysis cannot state this at all (its bad-value
// refinement only asks about one packet).
func TestInductionProvesSaturatingCounterUnbounded(t *testing.T) {
	v := seqVerifier(t)
	rep, err := v.SeqCrashFreedom(parseSeq(t, counterSatConfig), SeqOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Proved || rep.K != 1 {
		t.Fatalf("report %+v, want proved at k=1", rep)
	}
	if rep.Witness != nil {
		t.Error("proved report carries a witness")
	}
	st := v.Stats()
	if st.InductionProved != 1 {
		t.Errorf("InductionProved = %d, want 1", st.InductionProved)
	}
	if st.InductionDepth != 1 {
		t.Errorf("InductionDepth = %d, want 1", st.InductionDepth)
	}
}

// The plain counter overflows eventually, so induction must NOT prove
// it; the evidence is a minimal multi-packet counterexample to
// induction — at least two packets (one non-crashing step is assumed by
// the k=1 hypothesis) from a seeded near-overflow state — and the
// concrete dataplane replays it byte for byte.
func TestInductionRefutesPlainCounterWithReplayableCTI(t *testing.T) {
	v := seqVerifier(t)
	p := parseSeq(t, counterOverflowConfig)
	rep, err := v.SeqCrashFreedom(p, SeqOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Proved {
		t.Fatal("plain Counter proved crash-free — the overflow is gone?")
	}
	if rep.Refuted {
		t.Fatal("base case refuted: the overflow must not be reachable from boot state within MaxK packets")
	}
	if !rep.CTI || rep.Witness == nil {
		t.Fatalf("report %+v, want a counterexample to induction", rep)
	}
	w := rep.Witness
	if len(w.Packets) < 2 {
		t.Fatalf("CTI has %d packet(s), want >= 2 (a non-crashing step plus the crash)", len(w.Packets))
	}
	if len(w.InitState) == 0 {
		t.Fatal("CTI carries no seeded state; a fresh counter cannot overflow in 2 packets")
	}
	if w.Dispositions[len(w.Dispositions)-1] != ir.Crashed {
		t.Fatalf("final disposition %v, want crash", w.Dispositions[len(w.Dispositions)-1])
	}
	if err := ReplaySeq(p, w); err != nil {
		t.Fatalf("dataplane replay diverged from the witness: %v", err)
	}
}

// The same CTI must fail replay if the seeded state is dropped — i.e.
// the witness is genuinely multi-packet-from-that-state, not a
// single-packet artifact.
func TestInductionCTINeedsItsSeededState(t *testing.T) {
	v := seqVerifier(t)
	p := parseSeq(t, counterOverflowConfig)
	rep, err := v.SeqCrashFreedom(p, SeqOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := *rep.Witness
	w.InitState = nil
	if err := ReplaySeq(p, &w); err == nil {
		t.Fatal("replay succeeded without the seeded state; witness does not depend on it")
	}
}

// Bounded unrolling agrees with the induction verdicts: the saturating
// counter has no reachable crash at any explored depth, and the
// exploration cost grows with depth (the S1 experiment's shape).
func TestSeqCrashBoundedOnCounters(t *testing.T) {
	v := seqVerifier(t)
	rep, err := v.SeqCrashBounded(parseSeq(t, counterSatConfig), 4, SeqOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refuted {
		t.Fatal("bounded exploration found a crash in the saturating counter")
	}
	if rep.Sequences == 0 {
		t.Fatal("no sequences explored")
	}
	// Plain counter: no crash reachable from boot within 3 packets
	// either (the overflow needs 2^32) — bounded unrolling simply cannot
	// answer the unbounded question, which is the point of induction.
	v2 := seqVerifier(t)
	rep2, err := v2.SeqCrashBounded(parseSeq(t, counterOverflowConfig), 3, SeqOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Refuted {
		t.Fatal("plain counter crashed within 3 packets of boot state")
	}
}

// The token-bucket level invariant (tokens <= capacity) is preserved by
// every packet: proved by 1-induction, for sequences of any length.
func TestProveInvariantTokenBucketLevel(t *testing.T) {
	v := seqVerifier(t)
	p := parseSeq(t, `
		src :: InfiniteSource;
		tb :: TokenBucket(3);
		src -> tb; tb[1] -> Discard;`)
	inv := StateInvariant{
		Name: "token-level-bound",
		Pred: func(sv *StateView) *expr.Expr {
			return expr.Ule(sv.Read("tb.tokens", expr.Const(8, 0)), expr.Const(32, 3))
		},
	}
	rep, err := v.ProveInvariant(p, inv, SeqOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Proved || rep.K != 1 {
		t.Fatalf("report %+v, want proved at k=1", rep)
	}
	// The converse bound (tokens < capacity) fails at boot: the base
	// case refutes it with a zero-packet witness.
	bad := StateInvariant{
		Name: "too-tight",
		Pred: func(sv *StateView) *expr.Expr {
			return expr.Ult(sv.Read("tb.tokens", expr.Const(8, 0)), expr.Const(32, 3))
		},
	}
	rep2, err := v.ProveInvariant(p, bad, SeqOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Refuted {
		t.Fatalf("report %+v, want base-case refutation", rep2)
	}
	if len(rep2.Witness.Packets) != 0 {
		t.Fatalf("boot-state refutation should need no packets, got %d", len(rep2.Witness.Packets))
	}
}

// Stateless pipelines and state-writing-only pipelines close trivially:
// no crash path depends on state, so induction proves at k=1 with no
// sequence exploration beyond the crash probes.
func TestInductionTrivialOnNonReadingPipelines(t *testing.T) {
	v := seqVerifier(t)
	p := parseSeq(t, `
		src :: InfiniteSource;
		cls :: Classifier(12/0800, -);
		strip :: Strip(14);
		chk :: CheckIPHeader(NOCHECKSUM);
		nat :: IPRewriter(SNAT 100.64.0.1);
		src -> cls; cls[0] -> strip -> chk; cls[1] -> Discard;
		chk[0] -> nat -> Discard; chk[1] -> Discard;`)
	rep, err := v.SeqCrashFreedom(p, SeqOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Proved || rep.K != 1 {
		t.Fatalf("report %+v, want trivially proved at k=1", rep)
	}
}

// Induction results are deterministic: two fresh verifiers produce the
// same verdict and byte-identical witnesses (batch verdicts embed them,
// and batch reruns must be reproducible).
func TestInductionDeterministic(t *testing.T) {
	run := func() *InductionReport {
		v := seqVerifier(t)
		rep, err := v.SeqCrashFreedom(parseSeq(t, counterOverflowConfig), SeqOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Proved != b.Proved || a.K != b.K || a.CTI != b.CTI {
		t.Fatalf("verdicts differ: %+v vs %+v", a, b)
	}
	if len(a.Witness.Packets) != len(b.Witness.Packets) {
		t.Fatalf("witness lengths differ")
	}
	for i := range a.Witness.Packets {
		if string(a.Witness.Packets[i]) != string(b.Witness.Packets[i]) {
			t.Fatalf("witness packet %d differs between runs", i)
		}
	}
}
