package verify

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vsd/internal/bv"
	"vsd/internal/click"
	"vsd/internal/expr"
	"vsd/internal/ir"
	"vsd/internal/smt"
	"vsd/internal/symbex"
	"vsd/internal/telemetry"
)

// Options configures a Verifier.
type Options struct {
	// MinLen and MaxLen bound the symbolic packet length (defaults:
	// packet.MinFrame and packet.MaxFrame are typical; zero values become
	// 14 and 1514).
	MinLen, MaxLen uint64
	// Engine options forwarded to the symbolic executor.
	Symbex symbex.Options
	// DisableSummaryCache re-runs Step 1 for every pipeline position
	// (ablation: the paper processes each element once).
	DisableSummaryCache bool
	// MaxComposedPaths bounds Step-2 exploration (0 = default).
	MaxComposedPaths int
	// Parallelism bounds the worker pool for Step-1 summarization and
	// the Step-2 composed-path walk. 0 uses GOMAXPROCS; 1 disables
	// concurrency. Verdicts and statistics are schedule-independent;
	// witness ordering is canonicalized by path name.
	Parallelism int
	// Store persists Step-1 summaries across Verifier instances (and,
	// with a DiskStore, across processes), keyed by program fingerprint.
	// nil keeps summaries purely in the per-Verifier cache. Loaded
	// entries bypass the symbolic engine entirely; corrupt or missing
	// entries fall back to re-summarizing.
	Store SummaryStore
	// MaxRefinedReads caps the bad-value combination search of the
	// stateful refinement (stateful.go): crash paths whose constraint
	// mentions more state reads than this stay suspect (sound, but
	// reported via Stats.RefinementTruncated). 0 means the default of 2.
	MaxRefinedReads int
	// SolverMaxConflicts bounds each SAT search (0 = the solver default,
	// negative = unbounded) and SolverTimeout bounds its wall time (0 =
	// none). An exhausted budget surfaces as an unresolved obligation in
	// the property report — never as a false verdict — so callers like
	// vsdserve can bound worst-case latency.
	SolverMaxConflicts int64
	SolverTimeout      time.Duration
	// The SAT performance layer (DESIGN.md §10) is on by default; these
	// knobs exist for the ablation benchmarks. DisableSATPreprocess
	// skips CNF preprocessing (bounded variable elimination +
	// subsumption), DisablePortfolio never races diversified clones on
	// hard obligations, and DisableClauseSharing keeps each session's
	// learnt clauses private instead of exchanging low-glue ones.
	DisableSATPreprocess bool
	DisablePortfolio     bool
	DisableClauseSharing bool
	// SolverExchange selects the clause-exchange scope. nil gives each
	// Verifier its own exchange: the parallel walk's workers share
	// clauses with each other, and two Verifier instances stay fully
	// independent (reports are reproducible run to run). Passing
	// smt.SharedExchange() opts into the process-wide pool — long-lived
	// services like vsdserve reuse clause work across requests at the
	// cost of cross-instance reproducibility of witness bytes (verdicts
	// are unaffected).
	SolverExchange *smt.ClauseExchange
	// SolverFaultHook forwards to smt.Options.FaultHook: the
	// fault-injection harness's solver-level hook (internal/faultinject)
	// forcing Unknown verdicts, timeouts, or panics into individual SAT
	// searches. Production configurations leave it nil.
	SolverFaultHook func() smt.SolveFault
	// Trace records phase/obligation spans (Step-1 summarizations,
	// Step-2 walks, per-obligation SAT solves, store operations) into
	// the given tracer for Chrome trace-event export. nil disables
	// tracing at zero cost (the disabled path is allocation-free).
	Trace *telemetry.Tracer
	// Metrics threads verifier latency histograms and store counters
	// through the given registry (surfaced by vsdserve's /metrics).
	// nil keeps the always-on solve/summarize histograms private to
	// Stats.
	Metrics *telemetry.Registry
	// Profile aggregates per-obligation solver cost (wall time,
	// conflicts, CNF growth) for ObligationProfile — the machinery
	// behind `vsdverify -profile`. Off by default: it prices a string
	// label per stitched obligation.
	Profile bool
}

// DefaultPortfolio is the number of diversified solver clones raced on a
// hard obligation when portfolio solving is enabled.
const DefaultPortfolio = 3

// solverOptions translates the verifier-level solver knobs into
// smt.Options (shared by the compositional verifier and the monolithic
// baseline so ablations compare like with like). With sharing enabled
// and no explicit SolverExchange, each call allocates a fresh exchange —
// instance-scoped sharing.
func (o Options) solverOptions() smt.Options {
	so := smt.Options{
		MaxConflicts: o.SolverMaxConflicts,
		QueryTimeout: o.SolverTimeout,
		Preprocess:   !o.DisableSATPreprocess,
		FaultHook:    o.SolverFaultHook,
	}
	if !o.DisablePortfolio {
		so.Portfolio = DefaultPortfolio
	}
	if !o.DisableClauseSharing {
		so.Exchange = o.SolverExchange
		if so.Exchange == nil {
			so.Exchange = smt.NewClauseExchange(0, 0)
		}
	}
	return so
}

// DefaultMaxRefinedReads is the refinement cap used when
// Options.MaxRefinedReads is zero.
const DefaultMaxRefinedReads = 2

// DefaultMaxComposedPaths bounds Step-2 path enumeration.
const DefaultMaxComposedPaths = 1 << 18

// Stats describes the work a verification performed.
type Stats struct {
	ElementsSummarized int   // Step-1 symbolic-engine runs (all caches missed)
	SummaryCacheHits   int   // Step-1 in-memory cache hits
	StoreHits          int   // Step-1 summaries loaded from Options.Store
	StoreMisses        int   // Options.Store lookups that fell through to the engine
	SegmentsTotal      int   // segments across all summaries used
	Suspects           int   // crash-tagged segments before composition
	ComposedPaths      int   // stitched paths explored in Step 2
	ComposedInfeasible int   // stitched paths discharged as infeasible
	SolverQueries      int64 // feasibility queries in Step 2
	// RefinementTruncated counts crash paths left suspect because they
	// read more state values than Options.MaxRefinedReads allows the
	// bad-value search to enumerate.
	RefinementTruncated int
	// Robustness counters (DESIGN.md §9). PanicsRecovered counts engine
	// panics contained by the workers (each surfaced as an unresolved
	// obligation, never a verdict); WatchdogFired counts wall-budget
	// cancellations delivered through Interrupt.
	PanicsRecovered int
	WatchdogFired   int
	// Sequence-verification counters (induction.go, DESIGN.md §8).
	SeqSequences     int // feasible multi-packet sequences explored
	SeqInfeasible    int // sequence extensions discharged as infeasible
	InductionDepth   int // deepest k-induction step attempted
	InductionProved  int // obligations proved for unbounded sequences
	InductionRefuted int // induction obligations refuted by a reachable sequence
	SeqSpecRefuted   int // bounded sequence specs/explorations refuted
	SymbexStats      symbex.Stats
	// SolveTimes is the wall-clock spread of individual solver queries
	// (nanoseconds) and SummarizeTimes of Step-1 engine runs — the
	// percentile view that end-of-run totals hide (a neutral mean can
	// mask a regressed tail; BENCH records carry these since PR 10).
	SolveTimes     telemetry.HistSummary
	SummarizeTimes telemetry.HistSummary
	// Solver carries the shared solver's counters, including the
	// incremental-session ones (assumption solves, reused clauses).
	Solver smt.Stats
}

// Verifier runs compositional verification over pipelines. All methods
// are safe for concurrent use; a single verification also fans its own
// work out across Options.Parallelism goroutines.
type Verifier struct {
	solver *smt.Solver
	opts   Options

	// mu guards the summary cache, the statistics, and the idle pools.
	// The per-query counters below are atomics instead: every walker
	// bumps them on the hot path, and a shared mutex there serializes
	// the pool.
	mu       sync.Mutex
	cache    map[ir.Fingerprint]*summaryEntry
	stats    Stats
	engines  []*symbex.Engine
	sessions []*smt.IncrementalSession

	composedPaths      atomic.Int64
	composedInfeasible atomic.Int64
	solverQueries      atomic.Int64
	panicsRecovered    atomic.Int64
	watchdogFired      atomic.Int64

	// interrupt is the watchdog's cancellation flag, shared with the
	// solver (smt.Options.Interrupt): setting it makes every in-flight
	// and future SAT search return Unknown and stops walkers at the next
	// subtree boundary, so all affected obligations degrade to
	// unresolved — never to a verdict.
	interrupt atomic.Bool

	// visitMu serializes walk visit callbacks; rootSession backs the
	// solver queries made from inside them (witnesses, the stateful
	// refinement) and from post-walk report construction.
	visitMu     sync.Mutex
	rootSession *smt.IncrementalSession

	// tel is the telemetry spine (always non-nil; see vtel).
	tel *vtel
}

// summaryEntry is a once-filled summary cache slot: concurrent walkers
// requesting the same program block on the first computation instead of
// duplicating it. merged records whether the summary's step counts are
// upper bounds (loop-state merging), whether it was computed here or
// loaded from the store.
type summaryEntry struct {
	once   sync.Once
	segs   []*symbex.Segment
	merged bool
	err    error
}

// New returns a Verifier with fresh solver and engine pool.
func New(opts Options) *Verifier {
	if opts.MinLen == 0 {
		opts.MinLen = 14
	}
	if opts.MaxLen == 0 {
		opts.MaxLen = 1514
	}
	v := &Verifier{
		opts:  opts,
		cache: map[ir.Fingerprint]*summaryEntry{},
		tel:   newVtel(opts),
	}
	so := opts.solverOptions()
	so.Interrupt = &v.interrupt
	v.solver = smt.New(so)
	v.rootSession = v.solver.NewSession()
	// Witness extraction and refinement queries run on the root
	// session from under visitMu (one goroutine at a time), so one
	// permanent lane keeps their spans properly nested.
	v.tel.bindSession(v.rootSession, v.tel.tracer.Lane("verify-root"))
	return v
}

// Interrupt cancels all in-flight and future solver work on this
// Verifier: SAT searches return Unknown, walkers stop at the next
// subtree boundary, and every affected obligation degrades to
// unresolved (DESIGN.md §9). It never fabricates a verdict. Interrupt
// is verifier-wide: under a shared Verifier, concurrent verifications
// all degrade — acceptable collateral for a watchdog whose alternative
// is a wedged daemon. Resume restores service.
func (v *Verifier) Interrupt() { v.interrupt.Store(true) }

// Resume clears an Interrupt, restoring normal solving for subsequent
// queries.
func (v *Verifier) Resume() { v.interrupt.Store(false) }

// WithWatchdog runs fn under a wall budget: if fn has not returned
// within budget, the verifier is interrupted — cancelling solver work
// even when the solver ignores its own deadline (a propagation storm
// between deadline checks, an injected stall) — and fn's obligations
// degrade to unresolved. The interrupt is cleared before returning.
// fired reports whether the watchdog had to step in. budget <= 0 runs
// fn unguarded.
func (v *Verifier) WithWatchdog(budget time.Duration, fn func() error) (fired bool, err error) {
	if budget <= 0 {
		return false, fn()
	}
	interrupted := make(chan struct{})
	t := time.AfterFunc(budget, func() {
		defer close(interrupted)
		v.watchdogFired.Add(1)
		v.Interrupt()
	})
	err = fn()
	// Stop returning false means the callback has fired (or is mid-run):
	// wait for its Interrupt to land before clearing it, so a late timer
	// can never leave the verifier permanently interrupted.
	if !t.Stop() {
		<-interrupted
		v.Resume()
		return true, err
	}
	return false, err
}

// parallelism resolves Options.Parallelism.
func (v *Verifier) parallelism() int {
	if v.opts.Parallelism > 0 {
		return v.opts.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Stats returns a snapshot of the accumulated statistics. It is safe to
// call concurrently with a running verification; engine counters are
// folded in as workers finish with their engines.
func (v *Verifier) Stats() Stats {
	v.mu.Lock()
	s := v.stats
	v.mu.Unlock()
	s.ComposedPaths = int(v.composedPaths.Load())
	s.ComposedInfeasible = int(v.composedInfeasible.Load())
	s.SolverQueries = v.solverQueries.Load()
	s.PanicsRecovered = int(v.panicsRecovered.Load())
	s.WatchdogFired = int(v.watchdogFired.Load())
	s.Solver = v.solver.Stats()
	s.SolveTimes = v.tel.solveHist.Summary()
	s.SummarizeTimes = v.tel.summarizeHist.Summary()
	return s
}

// getEngine checks an idle symbolic-execution engine out of the pool
// (or creates one sharing the verifier's solver).
func (v *Verifier) getEngine() *symbex.Engine {
	v.mu.Lock()
	if n := len(v.engines); n > 0 {
		e := v.engines[n-1]
		v.engines = v.engines[:n-1]
		v.mu.Unlock()
		return e
	}
	v.mu.Unlock()
	return symbex.New(v.solver, v.opts.Symbex)
}

// putEngine folds the engine's counters into the aggregate statistics
// and returns it to the pool (warm loop memo and solver session).
func (v *Verifier) putEngine(e *symbex.Engine) {
	st := e.Stats()
	e.ResetStats()
	v.mu.Lock()
	v.stats.SymbexStats.Add(st)
	v.engines = append(v.engines, e)
	v.mu.Unlock()
}

// getSession checks an idle incremental solver session out of the
// pool. The checkout also binds the session to a trace lane (when
// tracing): the caller's goroutine drives the session sequentially
// until putSession, which is exactly the nesting discipline a lane
// needs.
func (v *Verifier) getSession() *smt.IncrementalSession {
	v.mu.Lock()
	if n := len(v.sessions); n > 0 {
		s := v.sessions[n-1]
		v.sessions = v.sessions[:n-1]
		v.mu.Unlock()
		v.tel.bindSession(s, v.tel.getLane())
		return s
	}
	v.mu.Unlock()
	s := v.solver.NewSession()
	v.tel.bindSession(s, v.tel.getLane())
	return s
}

func (v *Verifier) putSession(s *smt.IncrementalSession) {
	if lane := v.tel.laneFor(s); lane != nil {
		v.tel.bindSession(s, nil)
		v.tel.putLane(lane)
	}
	v.mu.Lock()
	v.sessions = append(v.sessions, s)
	v.mu.Unlock()
}

// input returns the Step-1 symbolic input specification.
func (v *Verifier) input() symbex.Input {
	return symbex.DefaultInput(v.opts.MinLen, v.opts.MaxLen)
}

// Pre returns the global assumptions (packet length bounds) under which
// all verdicts hold.
func (v *Verifier) Pre() []*expr.Expr { return v.input().Pre }

// Summarize runs Step 1 for one element, with caching by the program's
// content fingerprint. Concurrent calls for the same program share one
// computation. With Options.Store set, the persistent store is
// consulted before the symbolic engine and updated after a fresh run.
func (v *Verifier) Summarize(e *click.Instance) ([]*symbex.Segment, error) {
	if v.opts.DisableSummaryCache {
		segs, _, err := v.summarize(e)
		return segs, err
	}
	key := e.SummaryKey()
	v.mu.Lock()
	ent, ok := v.cache[key]
	if ok {
		v.stats.SummaryCacheHits++
	} else {
		ent = &summaryEntry{}
		v.cache[key] = ent
	}
	v.mu.Unlock()
	ent.once.Do(func() { ent.segs, ent.merged, ent.err = v.loadOrSummarize(e) })
	if ent.err != nil && errors.Is(ent.err, errUnresolved) {
		// A transient failure — contained engine panic, watchdog
		// interrupt — must not poison the cache: drop the entry so a
		// later admission (or a queued retry) re-runs the engine
		// instead of inheriting this fault forever.
		v.mu.Lock()
		if v.cache[key] == ent {
			delete(v.cache, key)
		}
		v.mu.Unlock()
	}
	return ent.segs, ent.err
}

// loadOrSummarize fills one summary-cache slot: from the persistent
// store when possible, from the engine otherwise (updating the store).
// Store traffic is keyed by StoreKey — the program fingerprint bound to
// the verifier's Step-1 context — never by the bare program key, so a
// store shared between differently-configured verifiers stays sound.
func (v *Verifier) loadOrSummarize(e *click.Instance) ([]*symbex.Segment, bool, error) {
	if v.opts.Store != nil {
		key := StoreKey(e.Program(), v.opts)
		lane := v.tel.getLane()
		sp := lane.Begin("store", "store-load:"+e.Name())
		sum, ok := v.opts.Store.Load(key)
		sp.End()
		v.tel.putLane(lane)
		if ok {
			v.tel.storeLoads.Inc()
			v.countSummary(sum.Segments, sum.Merged, true)
			return sum.Segments, sum.Merged, nil
		}
		v.mu.Lock()
		v.stats.StoreMisses++
		v.mu.Unlock()
		segs, merged, err := v.summarize(e)
		if err == nil {
			lane := v.tel.getLane()
			sp := lane.Begin("store", "store-save:"+e.Name())
			v.opts.Store.Save(key, &symbex.Summary{Segments: segs, Merged: merged})
			sp.End()
			v.tel.putLane(lane)
			v.tel.storeSaves.Inc()
		}
		return segs, merged, err
	}
	return v.summarize(e)
}

// summariesMerged reports whether any cached summary used by the
// pipeline's elements carries the merged (steps-are-upper-bounds) flag.
// Summaries must already be cached (i.e. after a verification ran).
// With the cache disabled there is no per-program record, so the
// verifier-wide flag stands in — conservative: it may report an upper
// bound where the bound is exact, never the reverse.
func (v *Verifier) summariesMerged(p *click.Pipeline) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.opts.DisableSummaryCache {
		return v.stats.SymbexStats.Merged
	}
	for _, e := range p.Elements {
		if ent, ok := v.cache[e.SummaryKey()]; ok && ent.merged {
			return true
		}
	}
	return false
}

// countSummary folds one summary's segment counters into the stats.
// fromStore marks summaries served by the persistent store (no engine
// run); their Merged flag still taints step-count exactness.
func (v *Verifier) countSummary(segs []*symbex.Segment, merged, fromStore bool) {
	v.mu.Lock()
	if fromStore {
		v.stats.StoreHits++
		v.stats.SymbexStats.Merged = v.stats.SymbexStats.Merged || merged
	} else {
		v.stats.ElementsSummarized++
	}
	v.stats.SegmentsTotal += len(segs)
	for _, s := range segs {
		if s.IsSuspect() {
			v.stats.Suspects++
		}
	}
	v.mu.Unlock()
}

// summarize is the uncached Step-1 engine run. The second result
// reports whether loop-state merging occurred during this run (making
// the summary's step counts upper bounds; the flag is persisted with
// the artifact). An engine panic is contained here (DESIGN.md §9): the
// possibly-poisoned engine is dropped instead of repooled, and the
// element's summary becomes an unresolved obligation, never a partial
// summary.
func (v *Verifier) summarize(e *click.Instance) (segs []*symbex.Segment, merged bool, err error) {
	defer v.capturePanic(fmt.Sprintf("step-1 summarization of %s", e.Name()), nil, &err)
	lane := v.tel.getLane()
	sp := lane.Begin("step1", "summarize:"+e.Name())
	start := time.Now()
	eng := v.getEngine()
	segs, err = eng.Run(e.Program(), v.input())
	merged = eng.Stats().Merged
	v.putEngine(eng)
	v.tel.summarizeHist.Record(int64(time.Since(start)))
	sp.SetInt("segments", int64(len(segs)))
	sp.End()
	v.tel.putLane(lane)
	if err != nil {
		return nil, false, fmt.Errorf("verify: summarizing %s: %w", e.Name(), err)
	}
	v.countSummary(segs, merged, false)
	return segs, merged, nil
}

// summarizeAll runs Step 1 for every pipeline element, fanning distinct
// element classes out across the worker pool.
func (v *Verifier) summarizeAll(elems []*click.Instance) ([][]*symbex.Segment, error) {
	out := make([][]*symbex.Segment, len(elems))
	par := v.parallelism()
	if par > len(elems) {
		par = len(elems)
	}
	if par <= 1 {
		for i, e := range elems {
			segs, err := v.Summarize(e)
			if err != nil {
				return nil, err
			}
			out[i] = segs
		}
		return out, nil
	}
	var (
		wg    sync.WaitGroup
		next  atomic.Int64
		errMu sync.Mutex
		first error
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(elems) {
					return
				}
				segs, err := v.Summarize(elems[i])
				if err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					return
				}
				out[i] = segs
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return out, nil
}

// composed is the symbolic state of a stitched path prefix: the
// pipeline-level analogue of a segment.
type composed struct {
	// elems and ports record the element-level path so far.
	elems []int
	ports []int
	conds []*expr.Expr
	pkt   *expr.Array
	meta  map[string]*expr.Expr
	steps int64
	// reads and writes accumulate state accesses with globally unique
	// variable names and instance-qualified store names; nAcc renumbers
	// each stitched segment's access order into the composed path.
	reads  []symbex.StateAccess
	writes []symbex.StateUpdate
	nAcc   int
	model  *expr.Assignment // cached witness, nil if unknown
}

func (c *composed) fork() *composed {
	n := &composed{
		elems: append([]int{}, c.elems...),
		ports: append([]int{}, c.ports...),
		conds: append([]*expr.Expr{}, c.conds...),
		pkt:   c.pkt,
		meta:  make(map[string]*expr.Expr, len(c.meta)),
		steps: c.steps,
		reads: append([]symbex.StateAccess{}, c.reads...),
		writes: append([]symbex.StateUpdate{},
			c.writes...),
		nAcc:  c.nAcc,
		model: c.model,
	}
	for k, val := range c.meta {
		n.meta[k] = val
	}
	return n
}

// entryState builds the composed state at pipeline ingress: a fresh
// packet array and zeroed metadata annotations, matching the runtime.
func entryState(p *click.Pipeline) *composed {
	meta := map[string]*expr.Expr{}
	for _, e := range p.Elements {
		for slot, w := range e.Program().MetaSlots {
			if _, ok := meta[slot]; !ok {
				meta[slot] = expr.Const(w, 0)
			}
		}
	}
	return &composed{
		pkt:  expr.BaseArray(symbex.PktArrayName),
		meta: meta,
	}
}

// stitch applies segment seg of element pos (instance name inst) to the
// composed prefix, returning the extended state, or nil when the
// stitched constraint is infeasible. This is the paper's Step-2
// substitution: Cp(in) = C_prefix(in) ∧ C_seg(S_prefix(in)). sess is
// the calling walker's incremental solver session.
func (v *Verifier) stitch(sess *smt.IncrementalSession, st *composed, seg *symbex.Segment, pos int, inst string, extraPre []*expr.Expr, lbl string) (*composed, error) {
	sub := expr.NewSubst()
	sub.BindArr(symbex.PktArrayName, st.pkt)
	for slot, val := range st.meta {
		sub.BindVar(symbex.MetaVarPrefix+slot, val)
	}
	// State reads get globally unique names; stores are qualified by the
	// instance so the bad-value analysis can find the owning writes.
	for _, rd := range seg.Reads {
		sub.BindVar(rd.Var.Name, expr.Var(fmt.Sprintf("p%d.%s", pos, rd.Var.Name), rd.Var.Width()))
	}
	out := st.fork()
	out.elems = append(out.elems, pos)
	var newConds []*expr.Expr
	for _, c := range seg.Cond {
		ic := sub.Apply(c)
		if ic.IsTrue() {
			continue
		}
		if ic.IsFalse() {
			v.countInfeasible()
			return nil, nil
		}
		newConds = append(newConds, ic)
	}
	if len(newConds) > 0 {
		feasible, m, _ := v.feasible(sess, st, newConds, extraPre, "stitch", lbl)
		if !feasible {
			v.countInfeasible()
			return nil, nil
		}
		out.conds = append(out.conds, newConds...)
		out.model = m
	}
	out.pkt = sub.ApplyArray(seg.Pkt)
	for slot, val := range seg.Meta {
		out.meta[slot] = sub.Apply(val)
	}
	out.steps += seg.Steps
	for _, rd := range seg.Reads {
		out.reads = append(out.reads, symbex.StateAccess{
			Store: inst + "." + rd.Store,
			Key:   sub.Apply(rd.Key),
			Var:   sub.Apply(rd.Var),
			Seq:   st.nAcc + rd.Seq,
		})
	}
	for _, wr := range seg.Writes {
		out.writes = append(out.writes, symbex.StateUpdate{
			Store: inst + "." + wr.Store,
			Key:   sub.Apply(wr.Key),
			Val:   sub.Apply(wr.Val),
			Seq:   st.nAcc + wr.Seq,
		})
	}
	out.nAcc = st.nAcc + symbex.AccessSpan(seg.Reads, seg.Writes)
	return out, nil
}

func (v *Verifier) countInfeasible() { v.composedInfeasible.Add(1) }

// feasible decides whether the prefix extended by newConds is
// satisfiable on the given session, using the cached witness first. An
// Unknown verdict (conflict budget, deadline, or cancellation) reports
// feasible=true — the sound direction for every property, since paths
// are only ever discharged on Unsat — with unknown=true so callers can
// surface the obligation as unresolved instead of fabricating a verdict.
// kind and lbl attribute the query for tracing and the obligation
// profiler; lbl is empty when neither consumer is active.
func (v *Verifier) feasible(sess *smt.IncrementalSession, st *composed, newConds, extraPre []*expr.Expr, kind, lbl string) (feasible bool, m *expr.Assignment, unknown bool) {
	if st.model != nil {
		ok := true
		for _, c := range newConds {
			if !expr.Eval(c, st.model).IsTrue() {
				ok = false
				break
			}
		}
		if ok {
			return true, st.model, false
		}
	}
	pre := v.Pre()
	cons := make([]*expr.Expr, 0, len(pre)+len(extraPre)+len(st.conds)+len(newConds))
	cons = append(cons, pre...)
	cons = append(cons, extraPre...)
	cons = append(cons, st.conds...)
	cons = append(cons, newConds...)
	v.solverQueries.Add(1)
	sp, started := v.tel.beginSolve(sess, kind, lbl)
	r, m := sess.Check(cons)
	v.tel.recordSolve(sess, kind, lbl, started, sp)
	if r == smt.Unsat {
		return false, nil, false
	}
	if r == smt.Unknown {
		return true, nil, true
	}
	return true, m, false
}

// feasibleRoot is feasible on the root session: only for use under
// visitMu (visit callbacks, the stateful refinement) or after walk
// returns (report construction).
func (v *Verifier) feasibleRoot(st *composed, newConds, extraPre []*expr.Expr, kind, lbl string) (bool, *expr.Assignment, bool) {
	return v.feasible(v.rootSession, st, newConds, extraPre, kind, lbl)
}

// pathEnd describes how a composed path terminated.
type pathEnd struct {
	state  *composed
	disp   ir.Disposition
	crash  *symbex.CrashRecord
	egress int // valid when disp == Emitted (pipeline egress id)
}

// walker drives one composed-path exploration: a bounded pool of
// workers, each with its own incremental solver session, cooperating
// through a task queue. Subtrees are offloaded to the queue when a
// worker slot may be idle and explored inline otherwise, so the walk
// degrades to a plain DFS at Parallelism=1.
type walker struct {
	v         *Verifier
	p         *click.Pipeline
	extraPre  []*expr.Expr
	summaries [][]*symbex.Segment
	limit     int64
	visit     func(pathEnd) error

	tasks    chan walkTask
	pending  sync.WaitGroup
	explored atomic.Int64
	stopped  atomic.Bool

	errMu sync.Mutex
	err   error
}

type walkTask struct {
	elem int
	st   *composed
}

func (w *walker) recordErr(err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
	w.stopped.Store(true)
}

// trySpawn offloads a subtree to the pool without blocking; the caller
// explores it inline when the queue is full (or the walk is sequential).
func (w *walker) trySpawn(elem int, st *composed) bool {
	if w.tasks == nil {
		return false
	}
	w.pending.Add(1)
	select {
	case w.tasks <- walkTask{elem, st}:
		return true
	default:
		w.pending.Done()
		return false
	}
}

// doVisit serializes terminal-path callbacks (they mutate report state
// and may query the verifier's root session).
func (w *walker) doVisit(end pathEnd) error {
	w.v.visitMu.Lock()
	defer w.v.visitMu.Unlock()
	return w.visit(end)
}

// safeDFS runs one walk task under panic containment: a panic anywhere
// in the subtree — stitching, feasibility solving, a visit callback —
// is converted into an unresolved-obligation error, and the worker's
// session is reset so poisoned SAT state cannot serve later queries.
func (w *walker) safeDFS(sess *smt.IncrementalSession, elem int, st *composed) (err error) {
	defer func() {
		var pe *panicError
		if err == nil || !errors.As(err, &pe) {
			return
		}
		// The panic may have unwound through a visit callback mid-query
		// on the shared root session; don't trust that instance either.
		w.v.visitMu.Lock()
		w.v.rootSession.Reset()
		w.v.visitMu.Unlock()
	}()
	defer w.v.capturePanic("step-2 composed-path walk", sess, &err)
	return w.dfs(sess, elem, st)
}

// dfs explores the subtree rooted at (elem, st) on the worker's session.
func (w *walker) dfs(sess *smt.IncrementalSession, elem int, st *composed) error {
	if w.stopped.Load() {
		return nil
	}
	// A watchdog interrupt stops exploration outright: with the solver
	// cancelled every feasibility query would come back Unknown (treated
	// feasible), so continuing would enumerate the full unpruned tree to
	// no benefit. The whole walk degrades to one unresolved obligation.
	if w.v.interrupt.Load() {
		return errInterrupted
	}
	inst := w.p.Elements[elem].Name()
	// The obligation label names the stitched-path extension this
	// element contributes. Built only when the tracer or the profiler
	// will consume it — it costs a string per (prefix, element) pair.
	lbl := ""
	if w.v.tel.active() {
		if len(st.elems) == 0 {
			lbl = inst
		} else {
			lbl = pathName(w.p, st) + " -> " + inst
		}
	}
	for _, seg := range w.summaries[elem] {
		next, err := w.v.stitch(sess, st, seg, elem, inst, w.extraPre, lbl)
		if err != nil {
			return err
		}
		if next == nil {
			continue
		}
		terminal := false
		end := pathEnd{state: next, egress: -1}
		switch seg.Disposition {
		case ir.Crashed, ir.Dropped:
			terminal = true
			end.disp = seg.Disposition
			end.crash = seg.Crash
		case ir.Emitted:
			next.ports = append(next.ports, seg.Port)
			edge := w.p.Edges[elem][seg.Port]
			if edge.To < 0 {
				terminal = true
				end.disp = ir.Emitted
				end.egress = w.p.EgressID(elem, seg.Port)
			} else if !w.trySpawn(edge.To, next) {
				if err := w.dfs(sess, edge.To, next); err != nil {
					return err
				}
			}
		}
		if terminal {
			n := w.explored.Add(1)
			w.v.composedPaths.Add(1)
			if lane := w.v.tel.laneFor(sess); lane != nil {
				lane.Instant("step2", "path:"+end.disp.String())
			}
			if err := w.doVisit(end); err != nil {
				return err
			}
			if n > w.limit {
				return fmt.Errorf("verify: more than %d composed paths", w.limit)
			}
		}
		if w.stopped.Load() {
			return nil
		}
	}
	return nil
}

// walk explores every feasible composed path of the pipeline, invoking
// visit for each terminating path (crash, drop, or egress). extraPre
// adds property-specific input assumptions (e.g. reachability
// preconditions). Visit callbacks are serialized; path order is
// unspecified when Parallelism > 1.
func (v *Verifier) walk(p *click.Pipeline, extraPre []*expr.Expr, visit func(pathEnd) error) error {
	limit := v.opts.MaxComposedPaths
	if limit <= 0 {
		limit = DefaultMaxComposedPaths
	}
	sp := v.tel.main.Begin("phase", "step1:summarize-all")
	summaries, err := v.summarizeAll(p.Elements)
	sp.End()
	if err != nil {
		return err
	}
	sp = v.tel.main.Begin("phase", "step2:walk")
	defer sp.End()
	w := &walker{
		v:         v,
		p:         p,
		extraPre:  extraPre,
		summaries: summaries,
		limit:     int64(limit),
		visit:     visit,
	}
	root := entryState(p)
	par := v.parallelism()
	if par <= 1 {
		sess := v.getSession()
		err := w.safeDFS(sess, p.Entry, root)
		v.putSession(sess)
		if err != nil {
			return err
		}
		return w.err
	}
	w.tasks = make(chan walkTask, 4*par)
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := v.getSession()
			defer v.putSession(sess)
			for t := range w.tasks {
				if err := w.safeDFS(sess, t.elem, t.st); err != nil {
					w.recordErr(err)
				}
				w.pending.Done()
			}
		}()
	}
	w.pending.Add(1)
	w.tasks <- walkTask{p.Entry, root}
	go func() {
		w.pending.Wait()
		close(w.tasks)
	}()
	wg.Wait()
	return w.err
}

// pathName renders a composed path for reports.
func pathName(p *click.Pipeline, st *composed) string {
	out := ""
	for i, e := range st.elems {
		if i > 0 {
			out += " -> "
		}
		out += p.Elements[e].Name()
		if i < len(st.ports) {
			out += fmt.Sprintf("[%d]", st.ports[i])
		}
	}
	return out
}

// sortWitnesses canonicalizes report order: parallel walks discover
// paths in schedule order, and reports must not depend on the schedule.
func sortWitnesses(ws []Witness) {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Path != ws[j].Path {
			return ws[i].Path < ws[j].Path
		}
		return ws[i].Detail < ws[j].Detail
	})
}

// sortedMetaSlots returns the pipeline's metadata slots in stable order,
// for deterministic reports.
func sortedMetaSlots(p *click.Pipeline) []string {
	set := map[string]bv.Width{}
	for _, e := range p.Elements {
		for s, w := range e.Program().MetaSlots {
			set[s] = w
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
