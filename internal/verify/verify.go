// Package verify implements the paper's two-step compositional
// dataplane verification — the primary contribution of "Toward a
// Verifiable Software Dataplane" (Dobrescu & Argyraki, HotNets 2013).
//
// Step 1 (element verification): every element of a pipeline is
// symbolically executed once, in isolation, with an unconstrained
// symbolic packet. The result is a set of segment summaries — path
// constraint C, symbolic state transformer S, instruction count, crash
// tag. Summaries are cached by element class and configuration, so an
// element appearing at several pipeline positions (or in several
// pipelines) is processed once. Segments that can violate the target
// property in isolation are tagged "suspect".
//
// Step 2 (composition): element-level paths through the pipeline DAG are
// stitched by substitution — the upstream segment's output packet array
// and metadata replace the downstream segment's input variables, exactly
// the C1(in) ∧ C2(S1(in)) construction of the paper — and each stitched
// path's feasibility is decided by the solver without re-executing any
// code. Suspect segments whose stitched constraint is unsatisfiable are
// discharged (the paper's e3/p1/p4 example); feasible ones yield
// concrete witness packets.
//
// The package also provides the monolithic baseline (symbolic execution
// of the whole inlined pipeline, the paper's >12-hour comparison point)
// and the data-structure refinement for stateful elements (the
// "bad value" analysis).
package verify

import (
	"fmt"
	"sort"

	"vsd/internal/bv"
	"vsd/internal/click"
	"vsd/internal/expr"
	"vsd/internal/ir"
	"vsd/internal/smt"
	"vsd/internal/symbex"
)

// Options configures a Verifier.
type Options struct {
	// MinLen and MaxLen bound the symbolic packet length (defaults:
	// packet.MinFrame and packet.MaxFrame are typical; zero values become
	// 14 and 1514).
	MinLen, MaxLen uint64
	// Engine options forwarded to the symbolic executor.
	Symbex symbex.Options
	// DisableSummaryCache re-runs Step 1 for every pipeline position
	// (ablation: the paper processes each element once).
	DisableSummaryCache bool
	// MaxComposedPaths bounds Step-2 exploration (0 = default).
	MaxComposedPaths int
}

// DefaultMaxComposedPaths bounds Step-2 path enumeration.
const DefaultMaxComposedPaths = 1 << 18

// Stats describes the work a verification performed.
type Stats struct {
	ElementsSummarized int   // Step-1 runs (cache misses)
	SummaryCacheHits   int   // Step-1 cache hits
	SegmentsTotal      int   // segments across all summaries used
	Suspects           int   // crash-tagged segments before composition
	ComposedPaths      int   // stitched paths explored in Step 2
	ComposedInfeasible int   // stitched paths discharged as infeasible
	SolverQueries      int64 // feasibility queries in Step 2
	SymbexStats        symbex.Stats
}

// Verifier runs compositional verification over pipelines.
type Verifier struct {
	solver  *smt.Solver
	session *smt.Session
	engine  *symbex.Engine
	opts    Options
	cache   map[string][]*symbex.Segment
	stats   Stats
}

// New returns a Verifier with fresh solver and engine.
func New(opts Options) *Verifier {
	if opts.MinLen == 0 {
		opts.MinLen = 14
	}
	if opts.MaxLen == 0 {
		opts.MaxLen = 1514
	}
	solver := smt.New(smt.Options{})
	return &Verifier{
		solver:  solver,
		session: solver.NewSession(),
		engine:  symbex.New(solver, opts.Symbex),
		opts:    opts,
		cache:   map[string][]*symbex.Segment{},
	}
}

// Stats returns the accumulated statistics.
func (v *Verifier) Stats() Stats {
	s := v.stats
	s.SymbexStats = v.engine.Stats()
	return s
}

// input returns the Step-1 symbolic input specification.
func (v *Verifier) input() symbex.Input {
	return symbex.DefaultInput(v.opts.MinLen, v.opts.MaxLen)
}

// Pre returns the global assumptions (packet length bounds) under which
// all verdicts hold.
func (v *Verifier) Pre() []*expr.Expr { return v.input().Pre }

// Summarize runs Step 1 for one element, with caching by class+config.
func (v *Verifier) Summarize(e *click.Instance) ([]*symbex.Segment, error) {
	key := e.SummaryKey()
	if !v.opts.DisableSummaryCache {
		if segs, ok := v.cache[key]; ok {
			v.stats.SummaryCacheHits++
			return segs, nil
		}
	}
	segs, err := v.engine.Run(e.Program(), v.input())
	if err != nil {
		return nil, fmt.Errorf("verify: summarizing %s: %w", e.Name(), err)
	}
	v.stats.ElementsSummarized++
	v.stats.SegmentsTotal += len(segs)
	for _, s := range segs {
		if s.IsSuspect() {
			v.stats.Suspects++
		}
	}
	if !v.opts.DisableSummaryCache {
		v.cache[key] = segs
	}
	return segs, nil
}

// composed is the symbolic state of a stitched path prefix: the
// pipeline-level analogue of a segment.
type composed struct {
	// elems and ports record the element-level path so far.
	elems []int
	ports []int
	conds []*expr.Expr
	pkt   *expr.Array
	meta  map[string]*expr.Expr
	steps int64
	// reads and writes accumulate state accesses with globally unique
	// variable names and instance-qualified store names.
	reads  []symbex.StateAccess
	writes []symbex.StateUpdate
	model  *expr.Assignment // cached witness, nil if unknown
}

func (c *composed) fork() *composed {
	n := &composed{
		elems: append([]int{}, c.elems...),
		ports: append([]int{}, c.ports...),
		conds: append([]*expr.Expr{}, c.conds...),
		pkt:   c.pkt,
		meta:  make(map[string]*expr.Expr, len(c.meta)),
		steps: c.steps,
		reads: append([]symbex.StateAccess{}, c.reads...),
		writes: append([]symbex.StateUpdate{},
			c.writes...),
		model: c.model,
	}
	for k, val := range c.meta {
		n.meta[k] = val
	}
	return n
}

// entryState builds the composed state at pipeline ingress: a fresh
// packet array and zeroed metadata annotations, matching the runtime.
func entryState(p *click.Pipeline) *composed {
	meta := map[string]*expr.Expr{}
	for _, e := range p.Elements {
		for slot, w := range e.Program().MetaSlots {
			if _, ok := meta[slot]; !ok {
				meta[slot] = expr.Const(w, 0)
			}
		}
	}
	return &composed{
		pkt:  expr.BaseArray(symbex.PktArrayName),
		meta: meta,
	}
}

// stitch applies segment seg of element pos (instance name inst) to the
// composed prefix, returning the extended state, or nil when the
// stitched constraint is infeasible. This is the paper's Step-2
// substitution: Cp(in) = C_prefix(in) ∧ C_seg(S_prefix(in)).
func (v *Verifier) stitch(st *composed, seg *symbex.Segment, pos int, inst string, extraPre []*expr.Expr) (*composed, error) {
	sub := expr.NewSubst()
	sub.BindArr(symbex.PktArrayName, st.pkt)
	for slot, val := range st.meta {
		sub.BindVar(symbex.MetaVarPrefix+slot, val)
	}
	// State reads get globally unique names; stores are qualified by the
	// instance so the bad-value analysis can find the owning writes.
	for _, rd := range seg.Reads {
		sub.BindVar(rd.Var.Name, expr.Var(fmt.Sprintf("p%d.%s", pos, rd.Var.Name), rd.Var.Width()))
	}
	out := st.fork()
	out.elems = append(out.elems, pos)
	var newConds []*expr.Expr
	for _, c := range seg.Cond {
		ic := sub.Apply(c)
		if ic.IsTrue() {
			continue
		}
		if ic.IsFalse() {
			v.stats.ComposedInfeasible++
			return nil, nil
		}
		newConds = append(newConds, ic)
	}
	if len(newConds) > 0 {
		feasible, m := v.feasible(st, newConds, extraPre)
		if !feasible {
			v.stats.ComposedInfeasible++
			return nil, nil
		}
		out.conds = append(out.conds, newConds...)
		out.model = m
	}
	out.pkt = sub.ApplyArray(seg.Pkt)
	for slot, val := range seg.Meta {
		out.meta[slot] = sub.Apply(val)
	}
	out.steps += seg.Steps
	for _, rd := range seg.Reads {
		out.reads = append(out.reads, symbex.StateAccess{
			Store: inst + "." + rd.Store,
			Key:   sub.Apply(rd.Key),
			Var:   sub.Apply(rd.Var),
		})
	}
	for _, wr := range seg.Writes {
		out.writes = append(out.writes, symbex.StateUpdate{
			Store: inst + "." + wr.Store,
			Key:   sub.Apply(wr.Key),
			Val:   sub.Apply(wr.Val),
		})
	}
	return out, nil
}

// feasible decides whether the prefix extended by newConds is
// satisfiable, using the cached witness first.
func (v *Verifier) feasible(st *composed, newConds, extraPre []*expr.Expr) (bool, *expr.Assignment) {
	if st.model != nil {
		ok := true
		for _, c := range newConds {
			if !expr.Eval(c, st.model).IsTrue() {
				ok = false
				break
			}
		}
		if ok {
			return true, st.model
		}
	}
	pre := v.Pre()
	cons := make([]*expr.Expr, 0, len(pre)+len(extraPre)+len(st.conds)+len(newConds))
	cons = append(cons, pre...)
	cons = append(cons, extraPre...)
	cons = append(cons, st.conds...)
	cons = append(cons, newConds...)
	v.stats.SolverQueries++
	r, m := v.session.Check(cons)
	if r == smt.Unsat {
		return false, nil
	}
	if r == smt.Unknown {
		return true, nil
	}
	return true, m
}

// pathEnd describes how a composed path terminated.
type pathEnd struct {
	state  *composed
	disp   ir.Disposition
	crash  *symbex.CrashRecord
	egress int // valid when disp == Emitted (pipeline egress id)
}

// walk explores every feasible composed path of the pipeline, invoking
// visit for each terminating path (crash, drop, or egress). extraPre
// adds property-specific input assumptions (e.g. reachability
// preconditions).
func (v *Verifier) walk(p *click.Pipeline, extraPre []*expr.Expr, visit func(pathEnd) error) error {
	limit := v.opts.MaxComposedPaths
	if limit <= 0 {
		limit = DefaultMaxComposedPaths
	}
	summaries := make([][]*symbex.Segment, len(p.Elements))
	for i, e := range p.Elements {
		segs, err := v.Summarize(e)
		if err != nil {
			return err
		}
		summaries[i] = segs
	}
	explored := 0
	var dfs func(elem int, st *composed) error
	dfs = func(elem int, st *composed) error {
		inst := p.Elements[elem].Name()
		for _, seg := range summaries[elem] {
			next, err := v.stitch(st, seg, elem, inst, extraPre)
			if err != nil {
				return err
			}
			if next == nil {
				continue
			}
			switch seg.Disposition {
			case ir.Crashed, ir.Dropped:
				explored++
				v.stats.ComposedPaths++
				end := pathEnd{state: next, disp: seg.Disposition, crash: seg.Crash, egress: -1}
				if err := visit(end); err != nil {
					return err
				}
			case ir.Emitted:
				next.ports = append(next.ports, seg.Port)
				edge := p.Edges[elem][seg.Port]
				if edge.To < 0 {
					explored++
					v.stats.ComposedPaths++
					end := pathEnd{state: next, disp: ir.Emitted, egress: p.EgressID(elem, seg.Port)}
					if err := visit(end); err != nil {
						return err
					}
					continue
				}
				if err := dfs(edge.To, next); err != nil {
					return err
				}
			}
			if explored > limit {
				return fmt.Errorf("verify: more than %d composed paths", limit)
			}
		}
		return nil
	}
	return dfs(p.Entry, entryState(p))
}

// pathName renders a composed path for reports.
func pathName(p *click.Pipeline, st *composed) string {
	out := ""
	for i, e := range st.elems {
		if i > 0 {
			out += " -> "
		}
		out += p.Elements[e].Name()
		if i < len(st.ports) {
			out += fmt.Sprintf("[%d]", st.ports[i])
		}
	}
	return out
}

// sortedMetaSlots returns the pipeline's metadata slots in stable order,
// for deterministic reports.
func sortedMetaSlots(p *click.Pipeline) []string {
	set := map[string]bv.Width{}
	for _, e := range p.Elements {
		for s, w := range e.Program().MetaSlots {
			set[s] = w
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
