package verify

// Batch admission (DESIGN.md §7): the service-shaped entry point the
// paper's element-marketplace use case needs. An operator certifies a
// *stream* of submitted pipelines, not one pipeline per process: Batch
// verifies a corpus over a single Verifier, so every submission shares
// the summary cache, the persistent store, and the incremental solver
// sessions, and byte-identical pipelines are deduplicated outright by
// their content fingerprint.

import (
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"time"

	"vsd/internal/click"
	"vsd/internal/ir"
)

// degradeOrFail folds a property-gate error into the verdict. An
// unresolved degradation — contained engine panic, solver budget,
// watchdog interrupt — becomes a counted unresolved obligation with a
// one-line cause (stacks stay in Error strings and logs upstream);
// anything else stays a hard admission error. Either way the
// submission is not certified: degradation withholds certification,
// never fabricates it.
func degradeOrFail(verdict *BatchVerdict, err error) {
	verdict.Certified = false
	if errors.Is(err, errUnresolved) {
		verdict.Unresolved++
		verdict.UnresolvedCauses = append(verdict.UnresolvedCauses, unresolvedCause(err))
		return
	}
	verdict.Error = err.Error()
}

// BatchItem is one pipeline submitted for admission.
type BatchItem struct {
	// Name labels the submission in verdicts (e.g. the source filename).
	Name string
	// Pipeline is the parsed configuration to verify.
	Pipeline *click.Pipeline
	// Specs lists functional contracts the submission must additionally
	// satisfy. Submissions carrying specs are never deduplicated: spec
	// values are closures with no comparable identity, so equal-looking
	// lists could state different contracts.
	Specs []FuncSpec
	// SeqSpecs lists sequence contracts (multi-packet relations,
	// DESIGN.md §8) checked by bounded exploration from boot state.
	// Like Specs, they block deduplication.
	SeqSpecs []SeqSpec
	// Invariants lists state invariants to prove by k-induction. Like
	// Specs, they block deduplication.
	Invariants []StateInvariant
}

// InductionResult is the serializable per-invariant outcome of the
// unbounded-sequence obligations attached to a verdict (DESIGN.md §8).
type InductionResult struct {
	// Invariant names the obligation ("crash-freedom" for the automatic
	// unbounded crash-freedom proof over stateful pipelines).
	Invariant string `json:"invariant"`
	// Proved means the obligation holds for packet sequences of ANY
	// length (k-induction closed at depth K).
	Proved bool `json:"proved"`
	K      int  `json:"k,omitempty"`
	// Refuted means a concrete violating sequence from boot state
	// exists; WitnessPackets is its length.
	Refuted bool `json:"refuted,omitempty"`
	// CTI means only the inductive step failed: no unbounded guarantee,
	// but no reachable violation either (the bounded gates still stand).
	CTI            bool   `json:"cti,omitempty"`
	WitnessPackets int    `json:"witness_packets,omitempty"`
	Error          string `json:"error,omitempty"`
}

// BatchWitness is a serializable property-violation witness.
type BatchWitness struct {
	Path   string `json:"path"`
	Detail string `json:"detail"`
	// Packet is the concrete input packet, hex-encoded.
	Packet string `json:"packet"`
	// Output is the concrete output packet for functional-spec
	// violations, hex-encoded ("" otherwise).
	Output string `json:"output,omitempty"`
}

// BatchVerdict is the admission record for one submission: the
// marketplace's certificate (or rejection evidence) in serializable
// form. Field order and contents are deterministic — two runs over the
// same corpus produce byte-identical verdict JSON, which is what lets
// the warm-store CI check diff them.
type BatchVerdict struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	// DuplicateOf names the earlier submission this one is identical to
	// (same pipeline fingerprint and spec list); its verdict was reused
	// without re-verification.
	DuplicateOf string `json:"duplicate_of,omitempty"`
	// Certified is the overall admission decision: crash-free and every
	// attached spec verified.
	Certified bool `json:"certified"`
	CrashFree bool `json:"crash_free"`
	// Discharged counts crash paths ruled out by the bad-value analysis.
	Discharged int `json:"discharged,omitempty"`
	// BoundSteps is the worst-case IR statement count per packet — the
	// latency assessment the paper describes for operators. Exact unless
	// BoundIsUpper (loop-state merging makes it an upper bound).
	BoundSteps   int64 `json:"bound_steps"`
	BoundIsUpper bool  `json:"bound_is_upper,omitempty"`
	// SpecsPassed/SpecsFailed name the verified and refuted contracts
	// (functional specs and sequence specs alike).
	SpecsPassed []string       `json:"specs_passed,omitempty"`
	SpecsFailed []string       `json:"specs_failed,omitempty"`
	Witnesses   []BatchWitness `json:"witnesses,omitempty"`
	// Induction carries the per-invariant unbounded-sequence results:
	// the automatic crash-freedom induction for stateful pipelines plus
	// any attached StateInvariants.
	Induction []InductionResult `json:"induction,omitempty"`
	// Unresolved counts obligations left undecided across the admission's
	// property gates — solver-budget exhaustion, contained engine panics,
	// watchdog interrupts. Nonzero blocks Certified: the service degrades
	// to "not certified, here is why", never to a fabricated verdict.
	// omitempty keeps clean-run verdicts byte-identical to earlier runs.
	Unresolved int `json:"unresolved,omitempty"`
	// UnresolvedCauses attributes each unresolved obligation, one sorted
	// line per count (stacks of contained panics stay in logs).
	UnresolvedCauses []string `json:"unresolved_causes,omitempty"`
	// Error reports a verification failure (budget exhaustion and the
	// like); the other fields are meaningless when set.
	Error string `json:"error,omitempty"`
}

// batchWitnesses converts report witnesses to their serializable form.
func batchWitnesses(ws []Witness) []BatchWitness {
	out := make([]BatchWitness, 0, len(ws))
	for _, w := range ws {
		out = append(out, BatchWitness{
			Path:   w.Path,
			Detail: w.Detail,
			Packet: hex.EncodeToString(w.Packet),
			Output: hex.EncodeToString(w.Output),
		})
	}
	return out
}

// Batch verifies every submission on this Verifier, sharing Step-1
// summaries, the persistent store, and solver sessions across the
// corpus, and returns one verdict per item (in input order). A
// spec-free submission whose pipeline fingerprint matches an earlier
// spec-free item reuses its verdict with DuplicateOf set; submissions
// carrying specs are always verified — FuncSpec values are opaque
// closures (the library parameterizes them under fixed names), so no
// key can safely equate two spec lists. Per-item verification failures
// are recorded in the verdict's Error field; the batch always runs to
// completion.
func (v *Verifier) Batch(items []BatchItem) []BatchVerdict {
	out := make([]BatchVerdict, len(items))
	seen := map[ir.Fingerprint]int{}
	for i, it := range items {
		if len(it.Specs) == 0 && len(it.SeqSpecs) == 0 && len(it.Invariants) == 0 {
			key := it.Pipeline.Fingerprint()
			if j, ok := seen[key]; ok {
				out[i] = out[j]
				out[i].Name = it.Name
				out[i].DuplicateOf = items[j].Name
				continue
			}
			seen[key] = i
		}
		out[i] = v.admit(it)
	}
	return out
}

// admit runs the full admission pipeline for one submission.
func (v *Verifier) admit(it BatchItem) (verdict BatchVerdict) {
	verdict = BatchVerdict{
		Name:        it.Name,
		Fingerprint: it.Pipeline.Fingerprint().String(),
	}
	defer func() {
		// Last-resort backstop: the property drivers contain their own
		// panics (panics.go), so anything arriving here escaped every
		// session-aware recover. Degrade the one submission to an error
		// verdict — never the whole batch, never the daemon.
		if r := recover(); r != nil {
			v.panicsRecovered.Add(1)
			verdict.Certified = false
			verdict.Error = fmt.Sprintf("verify: panic during admission: %v (contained)", r)
		}
		sort.Strings(verdict.UnresolvedCauses)
	}()
	crash, err := v.CrashFreedom(it.Pipeline)
	if err != nil {
		degradeOrFail(&verdict, err)
		return verdict
	}
	verdict.CrashFree = crash.Verified
	verdict.Discharged = crash.Discharged
	verdict.Unresolved += crash.Unresolved
	verdict.UnresolvedCauses = append(verdict.UnresolvedCauses, crash.UnresolvedCauses...)
	verdict.Witnesses = append(verdict.Witnesses, batchWitnesses(crash.Witnesses)...)
	bound, err := v.BoundedInstructions(it.Pipeline)
	if err != nil {
		degradeOrFail(&verdict, err)
		return verdict
	}
	verdict.BoundSteps = bound.MaxSteps
	verdict.BoundIsUpper = v.summariesMerged(it.Pipeline)
	verdict.Certified = crash.Verified
	for _, spec := range it.Specs {
		rep, err := v.VerifyFunc(it.Pipeline, spec)
		if err != nil {
			degradeOrFail(&verdict, err)
			return verdict
		}
		verdict.Unresolved += rep.Unresolved
		verdict.UnresolvedCauses = append(verdict.UnresolvedCauses, rep.UnresolvedCauses...)
		if rep.Verified {
			verdict.SpecsPassed = append(verdict.SpecsPassed, spec.Name)
		} else {
			verdict.Certified = false
			verdict.SpecsFailed = append(verdict.SpecsFailed, spec.Name)
			// Crash witnesses already surfaced by the crash gate; keep
			// only genuinely functional violations to avoid duplicates.
			for _, w := range rep.Witnesses {
				if w.Output != nil {
					verdict.Witnesses = append(verdict.Witnesses, batchWitnesses([]Witness{w})...)
				}
			}
		}
	}
	// The terminal composed paths are shared across every sequence
	// obligation of this submission — one walk, not one per spec or
	// invariant.
	var seqEnds []seqEnd
	var seqErr error
	seqPrepared := false
	prep := func() ([]seqEnd, error) {
		if !seqPrepared {
			seqPrepared = true
			seqEnds, seqErr = v.prepareSeq(it.Pipeline)
		}
		return seqEnds, seqErr
	}
	for _, spec := range it.SeqSpecs {
		ends, err := prep()
		if err != nil {
			degradeOrFail(&verdict, err)
			return verdict
		}
		rep, err := v.verifySeq(it.Pipeline, ends, spec)
		if err != nil {
			degradeOrFail(&verdict, err)
			return verdict
		}
		verdict.Unresolved += rep.Unresolved
		verdict.UnresolvedCauses = append(verdict.UnresolvedCauses, rep.UnresolvedCauses...)
		if rep.Verified {
			verdict.SpecsPassed = append(verdict.SpecsPassed, spec.Name)
		} else {
			verdict.Certified = false
			verdict.SpecsFailed = append(verdict.SpecsFailed, spec.Name)
		}
	}
	// Unbounded-sequence obligations (DESIGN.md §8): stateful pipelines
	// automatically get the crash-freedom induction; attached invariants
	// follow. A base-case refutation is a real reachable violation and
	// blocks certification; a CTI alone does not (the bounded gates
	// above still hold), but the verdict records that no unbounded
	// guarantee exists. Induction errors (budget, merged state logs) are
	// recorded per obligation rather than failing the admission.
	if pipelineHasState(it.Pipeline) {
		res := inductionResult(it.Pipeline, "crash-freedom", prep, func(ends []seqEnd) (*InductionReport, error) {
			return v.seqCrashFreedom(it.Pipeline, ends, SeqOptions{})
		})
		verdict.Induction = append(verdict.Induction, res)
		if res.Refuted {
			verdict.Certified = false
			verdict.CrashFree = false
		}
	}
	for _, inv := range it.Invariants {
		res := inductionResult(it.Pipeline, inv.Name, prep, func(ends []seqEnd) (*InductionReport, error) {
			return v.proveInvariant(it.Pipeline, ends, inv, SeqOptions{})
		})
		verdict.Induction = append(verdict.Induction, res)
		if res.Refuted {
			verdict.Certified = false
		}
	}
	return verdict
}

// inductionResult folds one induction run into its serializable form.
// prep supplies the submission's shared (memoized) terminal-path set.
func inductionResult(p *click.Pipeline, name string, prep func() ([]seqEnd, error), run func([]seqEnd) (*InductionReport, error)) InductionResult {
	res := InductionResult{Invariant: name}
	ends, err := prep()
	if err != nil {
		res.Error = unresolvedCause(err)
		return res
	}
	rep, err := run(ends)
	if err != nil {
		res.Error = unresolvedCause(err)
		return res
	}
	// A refutation or CTI only counts if the concrete dataplane
	// reproduces it: the landed-boolean over-approximation on
	// capacity-bounded stores (symbex.SeqState) can in principle admit
	// sequences no real run performs, and an unreplayable witness must
	// surface as an error, never block (or excuse) certification.
	if (rep.Refuted || rep.CTI) && rep.Witness != nil {
		if err := ReplaySeq(p, rep.Witness); err != nil {
			res.Error = fmt.Sprintf("witness did not replay on the dataplane: %v", err)
			return res
		}
	}
	res.Proved = rep.Proved
	res.K = rep.K
	res.Refuted = rep.Refuted
	res.CTI = rep.CTI
	if rep.Witness != nil {
		res.WitnessPackets = len(rep.Witness.Packets)
	}
	return res
}

// Batch is the package-level convenience: a fresh Verifier configured
// by opts verifies the whole corpus, returning the verdicts, the
// verifier's accumulated statistics, and the wall time.
func Batch(items []BatchItem, opts Options) ([]BatchVerdict, Stats, time.Duration) {
	v := New(opts)
	start := time.Now()
	verdicts := v.Batch(items)
	return verdicts, v.Stats(), time.Since(start)
}
