package verify

import (
	"errors"
	"fmt"
	"sort"

	"vsd/internal/click"
	"vsd/internal/expr"
	"vsd/internal/ir"
	"vsd/internal/symbex"
)

// This file implements the functional property subsystem (DESIGN.md §6):
// declarative input/output specifications checked compositionally over
// the same Step-1/Step-2 machinery as crash freedom. The paper names
// "filtering correctness" alongside crash freedom and bounded execution
// as the properties a verifiable dataplane must offer; a FuncSpec is the
// general form — a precondition over the symbolic input packet plus a
// postcondition relating the input to the symbolic *output* packet,
// egress, and final metadata of every composed path.

// FuncSpec is a declarative functional property of a pipeline.
//
// Pre constrains the symbolic input (expressions over the entry packet
// array, the packet length, and entry metadata; see the symbex naming
// conventions). Post is consulted once per terminal composed path and
// returns the proof obligation for that path — a 1-bit expression over
// the path's input AND output state, built through the PathInfo
// accessors — or nil when the path carries no obligation (e.g. a TTL
// spec has nothing to say about paths that drop the packet).
//
// The property holds iff, for every feasible path, Pre ∧ pathConstraint
// ∧ ¬Post is unsatisfiable. Feasible violations yield witnesses carrying
// both the concrete input packet and the concrete output packet the
// pipeline would produce for it.
type FuncSpec struct {
	// Name labels the spec in reports.
	Name string
	// Pre holds input assumptions under which the spec is stated.
	Pre []*expr.Expr
	// Post returns the obligation for one terminal path (nil = none).
	// A nil Post function makes the spec a crash-only contract.
	Post func(path *PathInfo) *expr.Expr
	// AllowCrash makes realizable crashing paths spec-compliant. By
	// default a functional spec implies crash freedom on the paths it
	// constrains: a crash produces no output packet to relate.
	AllowCrash bool
}

// PathInfo exposes one terminal composed path to a FuncSpec
// postcondition: how the path ended, which elements it traversed, and
// symbolic access to the input packet, the output packet (the stitched
// store chain the composition built, see DESIGN.md §6), the packet
// length, and the final metadata annotations.
type PathInfo struct {
	disp   ir.Disposition
	egress int
	p      *click.Pipeline
	st     *composed
}

// Disposition reports how the path ended (Emitted, Dropped, Crashed).
func (pi *PathInfo) Disposition() ir.Disposition { return pi.disp }

// Emitted reports whether the path leaves the pipeline at an egress.
func (pi *PathInfo) Emitted() bool { return pi.disp == ir.Emitted }

// Dropped reports whether the path drops the packet.
func (pi *PathInfo) Dropped() bool { return pi.disp == ir.Dropped }

// Egress returns the pipeline egress id for emitted paths, -1 otherwise.
func (pi *PathInfo) Egress() int { return pi.egress }

// EgressElem returns the instance name of the element whose unconnected
// output port the path leaves through ("" unless emitted).
func (pi *PathInfo) EgressElem() string {
	if pi.disp != ir.Emitted || len(pi.st.elems) == 0 {
		return ""
	}
	return pi.p.Elements[pi.st.elems[len(pi.st.elems)-1]].Name()
}

// EgressPort returns the output port the path leaves through (-1 unless
// emitted).
func (pi *PathInfo) EgressPort() int {
	if pi.disp != ir.Emitted || len(pi.st.ports) == 0 {
		return -1
	}
	return pi.st.ports[len(pi.st.ports)-1]
}

// LastElem returns the instance name of the element the path ended in:
// the egress element for emitted paths, the dropping element for drops,
// the faulting element for crashes.
func (pi *PathInfo) LastElem() string {
	if len(pi.st.elems) == 0 {
		return ""
	}
	return pi.p.Elements[pi.st.elems[len(pi.st.elems)-1]].Name()
}

// Visited reports whether the path traversed the named element instance.
func (pi *PathInfo) Visited(inst string) bool {
	for _, e := range pi.st.elems {
		if pi.p.Elements[e].Name() == inst {
			return true
		}
	}
	return false
}

// Len returns the symbolic packet length (unchanged by processing: no
// element resizes the buffer; encapsulation moves the header offset).
func (pi *PathInfo) Len() *expr.Expr { return expr.Var(symbex.PktLenVar, 32) }

// InArray returns the symbolic INPUT packet array (the pipeline entry
// packet), for specs that build field reads themselves — e.g. the
// element-semantics helpers in internal/elements.
func (pi *PathInfo) InArray() *expr.Array { return expr.BaseArray(symbex.PktArrayName) }

// OutArray returns the symbolic OUTPUT packet array: the store chain the
// composed path leaves behind.
func (pi *PathInfo) OutArray() *expr.Array { return pi.st.pkt }

// In reads n consecutive bytes of the INPUT packet at concrete offset
// off, big-endian (network byte order). n must be 1, 2, 4, or 8.
func (pi *PathInfo) In(off uint64, n int) *expr.Expr {
	return pi.InAt(expr.Const(32, off), n)
}

// InAt is In with a symbolic 32-bit offset.
func (pi *PathInfo) InAt(off *expr.Expr, n int) *expr.Expr {
	return expr.SelectWide(expr.BaseArray(symbex.PktArrayName), off, n)
}

// Out reads n consecutive bytes of the OUTPUT packet — the packet as the
// path's final element leaves it — at concrete offset off, big-endian.
func (pi *PathInfo) Out(off uint64, n int) *expr.Expr {
	return pi.OutAt(expr.Const(32, off), n)
}

// OutAt is Out with a symbolic 32-bit offset.
func (pi *PathInfo) OutAt(off *expr.Expr, n int) *expr.Expr {
	return expr.SelectWide(pi.st.pkt, off, n)
}

// Meta returns the final value of a metadata annotation slot, or nil
// when no element of the pipeline declares the slot.
func (pi *PathInfo) Meta(slot string) *expr.Expr { return pi.st.meta[slot] }

// FuncReport is the outcome of checking one FuncSpec.
type FuncReport struct {
	// Spec echoes the spec name.
	Spec string
	// Verified is true when every feasible path satisfies its obligation.
	Verified bool
	// Obligations counts paths whose postcondition needed the solver.
	Obligations int
	// Proved counts obligations discharged as valid (negation unsat).
	Proved int
	// Trivial counts postconditions that folded to true syntactically.
	Trivial int
	// Discharged counts crash paths ruled out by the bad-value analysis.
	Discharged int
	// Unresolved counts obligations left undecided — solver budget,
	// contained engine panics, or a watchdog interrupt; they block
	// Verified.
	Unresolved int
	// UnresolvedCauses carries one line per unresolved obligation, sorted.
	UnresolvedCauses []string
	// Witnesses lists violations: concrete input packets together with
	// the concrete output packet the pipeline produces for them.
	Witnesses []Witness
}

// VerifyFunc checks a functional specification over every feasible
// composed path of the pipeline. Per path it evaluates the spec's
// postcondition symbolically and asks the incremental solver whether
// Pre ∧ pathConstraint ∧ ¬Post is satisfiable; a model is turned into an
// input/output witness pair. Crashing paths violate the spec (unless
// AllowCrash) exactly as in CrashFreedom, including the stateful
// bad-value refinement.
func (v *Verifier) VerifyFunc(p *click.Pipeline, spec FuncSpec) (*FuncReport, error) {
	sp := v.tel.main.Begin("property", "funcspec:"+spec.Name)
	defer sp.End()
	rep := &FuncReport{Spec: spec.Name, Verified: true}
	err := v.walk(p, spec.Pre, func(end pathEnd) error {
		if end.disp == ir.Crashed {
			if spec.AllowCrash {
				return nil
			}
			realizable, err := v.statefulRealizable(p, end.state)
			if err != nil {
				return err
			}
			if !realizable {
				rep.Discharged++
				return nil
			}
			w, err := v.witness(p, end.state, spec.Pre)
			if errors.Is(err, errUnresolved) {
				rep.Unresolved++
				rep.Verified = false
				rep.UnresolvedCauses = append(rep.UnresolvedCauses, unresolvedCause(err))
				return nil
			}
			if err != nil {
				return err
			}
			w.Detail = fmt.Sprintf("spec %s: path crashes (%s: %s)", spec.Name, end.crash.Kind, end.crash.Msg)
			rep.Verified = false
			rep.Witnesses = append(rep.Witnesses, w)
			return nil
		}
		// A nil Post is a crash-only contract: non-crashing paths carry
		// no obligation.
		if spec.Post == nil {
			return nil
		}
		pi := &PathInfo{disp: end.disp, egress: end.egress, p: p, st: end.state}
		post := spec.Post(pi)
		if post == nil || post.IsTrue() {
			if post != nil {
				rep.Trivial++
			}
			return nil
		}
		rep.Obligations++
		lbl := ""
		if v.tel.active() {
			lbl = spec.Name + " @ " + pathName(p, end.state)
		}
		violated, m, unknown := v.feasibleRoot(end.state, []*expr.Expr{expr.Not(post)}, spec.Pre, "funcspec", lbl)
		if !violated {
			rep.Proved++
			return nil
		}
		if unknown {
			rep.Unresolved++
			rep.Verified = false
			rep.UnresolvedCauses = append(rep.UnresolvedCauses,
				fmt.Sprintf("spec %s: obligation on %s unresolved within solver budget", spec.Name, endName(pi)))
			return nil
		}
		w, err := v.specWitness(p, end.state, m, spec.Pre, expr.Not(post))
		if errors.Is(err, errUnresolved) {
			rep.Unresolved++
			rep.Verified = false
			rep.UnresolvedCauses = append(rep.UnresolvedCauses, unresolvedCause(err))
			return nil
		}
		if err != nil {
			return err
		}
		w.Detail = fmt.Sprintf("spec %s: postcondition violated (%s)", spec.Name, endName(pi))
		rep.Verified = false
		rep.Witnesses = append(rep.Witnesses, w)
		return nil
	})
	if errors.Is(err, errUnresolved) {
		rep.Unresolved++
		rep.Verified = false
		rep.UnresolvedCauses = append(rep.UnresolvedCauses, unresolvedCause(err))
		err = nil
	}
	if err != nil {
		return nil, err
	}
	sortWitnesses(rep.Witnesses)
	sort.Strings(rep.UnresolvedCauses)
	return rep, nil
}

// endName renders how a path terminated, for violation details.
func endName(pi *PathInfo) string {
	switch pi.disp {
	case ir.Emitted:
		return fmt.Sprintf("egress %s[%d]", pi.EgressElem(), pi.EgressPort())
	case ir.Dropped:
		return fmt.Sprintf("dropped at %s", pi.LastElem())
	}
	return "crashed"
}

// specWitness materializes an input/output witness pair for a violated
// obligation: a checkedModel of the path constraint conjoined with the
// negated postcondition (m is the violation model when the solver
// produced one). Like witness(), it must only run under visitMu.
func (v *Verifier) specWitness(p *click.Pipeline, st *composed, m *expr.Assignment, extraPre []*expr.Expr, negPost *expr.Expr) (w Witness, err error) {
	defer v.capturePanic("spec witness extraction", v.rootSession, &err)
	m, err = v.checkedModel(p, st, m, extraPre, negPost)
	if err != nil {
		return Witness{}, err
	}
	in := packetFromModel(m, v.opts.MinLen, v.opts.MaxLen)
	// The output packet is the path's store chain evaluated byte-by-byte
	// under the model (length is invariant, see PathInfo.Len).
	out := make([]byte, len(in))
	for i := range out {
		b := expr.Eval(expr.Select(st.pkt, expr.Const(32, uint64(i))), m)
		out[i] = byte(b.Int())
	}
	return Witness{Packet: in, Output: out, Path: pathName(p, st)}, nil
}
