package verify

// Panic-isolation and watchdog tests (DESIGN.md §9). The invariants
// under test mirror internal/smt's robustness suite one layer up: an
// injected engine panic must degrade to an unresolved obligation — a
// report, never a fabricated verdict, never a downed process — and the
// watchdog must cancel runaway work and then restore service.

import (
	"strings"
	"testing"
	"time"

	"vsd/internal/packet"
	"vsd/internal/smt"
)

// panicVerifier returns a verifier whose every SAT search panics.
func panicVerifier() *Verifier {
	return New(Options{
		MinLen: packet.MinFrame, MaxLen: 64,
		SolverFaultHook: func() smt.SolveFault { return smt.ForcePanic },
	})
}

func TestSolverPanicContainedAsUnresolved(t *testing.T) {
	p := parsePipeline(t, `
		src :: InfiniteSource;
		e2 :: ToyE2;
		sink :: Discard;
		src -> e2 -> sink;
	`)
	v := panicVerifier()
	rep, err := v.CrashFreedom(p)
	if err != nil {
		t.Fatalf("contained panic surfaced as an error: %v", err)
	}
	if rep.Verified {
		t.Fatal("a panicking solver must not certify the pipeline")
	}
	if rep.Unresolved == 0 || len(rep.UnresolvedCauses) == 0 {
		t.Fatalf("contained panic not reported as unresolved: %+v", rep)
	}
	for _, c := range rep.UnresolvedCauses {
		if strings.Contains(c, "\n") {
			t.Fatalf("unresolved cause carries a stack, want one line: %q", c)
		}
	}
	if v.Stats().PanicsRecovered == 0 {
		t.Fatal("PanicsRecovered counter not bumped")
	}

	// A fresh, clean verifier over the same pipeline still works — the
	// containment left no poisoned global state behind.
	clean := New(Options{MinLen: packet.MinFrame, MaxLen: 64})
	crep, err := clean.CrashFreedom(p)
	if err != nil {
		t.Fatal(err)
	}
	if crep.Verified || len(crep.Witnesses) == 0 {
		t.Fatalf("clean run after contained panics lost the witness: %+v", crep)
	}
}

func TestBatchSurvivesInjectedPanics(t *testing.T) {
	p1 := parsePipeline(t, `
		src :: InfiniteSource; e1 :: ToyE1; sink :: Discard;
		src -> e1 -> sink;`)
	p2 := parsePipeline(t, `
		src :: InfiniteSource; e2 :: ToyE2; sink :: Discard;
		src -> e2 -> sink;`)
	v := panicVerifier()
	verdicts := v.Batch([]BatchItem{
		{Name: "a", Pipeline: p1},
		{Name: "b", Pipeline: p2},
	})
	if len(verdicts) != 2 {
		t.Fatalf("batch returned %d verdicts, want 2", len(verdicts))
	}
	for _, verdict := range verdicts {
		if verdict.Certified {
			t.Fatalf("%s: fabricated certification under injected panics", verdict.Name)
		}
		if verdict.Unresolved == 0 && verdict.Error == "" {
			t.Fatalf("%s: degradation not reported: %+v", verdict.Name, verdict)
		}
	}
}

func TestWatchdogCancelsRunawayVerification(t *testing.T) {
	// The IP-options loop needs real search; a 1ms wall budget cannot
	// finish it, so the watchdog must fire, every in-flight search must
	// degrade to Unknown, and the report must say "unresolved".
	p := parsePipeline(t, `
		src :: InfiniteSource;
		src -> Strip(14) -> chk :: CheckIPHeader(NOCHECKSUM);
		chk[0] -> opt :: IPOptions; chk[1] -> Discard;
		opt[1] -> Discard;`)
	v := New(Options{MinLen: packet.MinFrame, MaxLen: 40})
	var rep *CrashReport
	fired, err := v.WithWatchdog(time.Millisecond, func() error {
		var ferr error
		rep, ferr = v.CrashFreedom(p)
		return ferr
	})
	if err != nil {
		t.Fatalf("watchdogged run surfaced an error: %v", err)
	}
	if !fired {
		t.Fatal("watchdog did not fire on runaway verification")
	}
	if rep.Verified || rep.Unresolved == 0 {
		t.Fatalf("interrupted run must degrade to unresolved: %+v", rep)
	}
	if v.Stats().WatchdogFired == 0 {
		t.Fatal("WatchdogFired counter not bumped")
	}

	// The watchdog resumed the verifier: the same instance still decides
	// fresh obligations afterwards.
	easy := parsePipeline(t, `
		src :: InfiniteSource; e1 :: ToyE1; sink :: Discard;
		src -> e1 -> sink;`)
	after, err := v.CrashFreedom(easy)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Verified || after.Unresolved != 0 {
		t.Fatalf("verifier did not recover after watchdog: %+v", after)
	}
}

func TestWatchdogIdleOnFastWork(t *testing.T) {
	v := New(Options{MinLen: packet.MinFrame, MaxLen: 64})
	p := parsePipeline(t, `
		src :: InfiniteSource; e1 :: ToyE1; sink :: Discard;
		src -> e1 -> sink;`)
	fired, err := v.WithWatchdog(time.Minute, func() error {
		_, err := v.CrashFreedom(p)
		return err
	})
	if err != nil || fired {
		t.Fatalf("fast work under a generous budget: fired=%v err=%v", fired, err)
	}
	if v.Stats().WatchdogFired != 0 {
		t.Fatalf("idle watchdog counted a firing: %+v", v.Stats())
	}
}
