package verify

// Panic isolation (DESIGN.md §9). Every engine worker — Step-1
// summarization, Step-2 walkers, witness extraction on the root session
// — runs under recover(): an engine panic (a solver bug, an injected
// fault) is converted into an *unresolved obligation* carrying the
// captured stack, exactly like a solver-budget exhaustion. The two
// invariants are:
//
//  1. Never a fabricated verdict: a contained panic always lands on the
//     errUnresolved degradation path, which blocks Verified/Certified
//     and can only ever widen what the report admits it does not know.
//  2. Never a downed daemon: no panic raised below a property driver
//     escapes it.
//
// State hygiene matters as much as the recover itself: a panic that
// unwound mid-query may have left its incremental SAT session with a
// half-asserted atom, and a poisoned session could answer a later query
// with a wrong Unsat. Containment therefore resets the session it was
// guarding before reporting the obligation unresolved.

import (
	"fmt"
	"runtime/debug"
	"strings"

	"vsd/internal/smt"
)

// maxPanicStack bounds the stack bytes embedded in reports and
// verdicts; panics are diagnostics, not payload.
const maxPanicStack = 4 << 10

// panicError is a recovered engine panic. It unwraps to errUnresolved,
// so every existing errors.Is(err, errUnresolved) degradation path
// treats contained panics exactly like budget exhaustion.
type panicError struct {
	where string
	val   any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("verify: panic in %s: %v (contained)\n%s", e.where, e.val, e.stack)
}

func (e *panicError) Unwrap() error { return errUnresolved }

// capturePanic is the deferred containment hook: it converts an
// in-flight panic into a panicError assigned to *errp, counts it, and
// resets sess (when non-nil) so a poisoned SAT instance never serves
// another query.
// unresolvedCause renders err as the one-line cause recorded in report
// UnresolvedCauses fields. For contained panics this keeps the header
// ("panic in <where>") and drops the stack — the stack belongs in logs
// (Error), not in verdicts.
func unresolvedCause(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}

func (v *Verifier) capturePanic(where string, sess *smt.IncrementalSession, errp *error) {
	r := recover()
	if r == nil {
		return
	}
	v.panicsRecovered.Add(1)
	if sess != nil {
		sess.Reset()
	}
	stack := debug.Stack()
	if len(stack) > maxPanicStack {
		stack = stack[:maxPanicStack]
	}
	*errp = &panicError{where: where, val: r, stack: stack}
}
