package verify

// SummaryStore: durable, content-addressed Step-1 artifacts
// (DESIGN.md §7). Step 1 — the expensive symbolic execution of each
// element class — used to live only in a per-Verifier in-memory map and
// die with the process. A SummaryStore makes summaries outlive it:
// artifacts are keyed by StoreKey — the ir.Program content fingerprint
// bound to the Step-1 context (packet-length bounds, engine modes) the
// summary was computed under — so a store entry is valid for exactly
// the configurations whose summaries it holds, no matter which
// registry, class name, or process produced it.

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"vsd/internal/ir"
	"vsd/internal/symbex"
)

// SummaryStore persists Step-1 summaries across Verifier instances (and,
// for the disk implementation, across processes). Keys are StoreKey
// values. Load returns ok=false on any miss — absent, stale, or corrupt
// entries alike — in which case the verifier falls back to
// re-summarizing; Load must never return a summary that was not stored
// under the same key. Save failures are not fatal to verification and
// are reported via Stats. Implementations must be safe for concurrent
// use.
type SummaryStore interface {
	Load(fp ir.Fingerprint) (*symbex.Summary, bool)
	Save(fp ir.Fingerprint, s *symbex.Summary)
}

// StoreKey derives the summary-store key for one program under the
// given options: the program's content fingerprint mixed with the
// Step-1 context the summary depends on. The packet-length bounds are
// part of the key because the engine assumes them during pruning
// without recording them in segment conditions — a summary computed
// under [64,128] legitimately omits crash segments that only packets
// shorter than 64 bytes can reach, so reusing it at [14,48] would be
// unsound. The loop and pruning modes likewise change which segments a
// summary contains. Zero option values normalize exactly as in New, so
// equal effective configurations share keys.
func StoreKey(prog *ir.Program, opts Options) ir.Fingerprint {
	minLen, maxLen := opts.MinLen, opts.MaxLen
	if minLen == 0 {
		minLen = 14
	}
	if maxLen == 0 {
		maxLen = 1514
	}
	h := ir.NewHasher("vsd/sumkey/v1")
	h.Fingerprint(prog.Fingerprint())
	h.U64(minLen)
	h.U64(maxLen)
	h.U64(uint64(opts.Symbex.LoopMode))
	h.U64(uint64(opts.Symbex.PruneMode))
	return h.Sum()
}

// StoreStats counts store traffic.
type StoreStats struct {
	Hits      int64 // Load calls that returned a summary
	Misses    int64 // Load calls with no entry
	Corrupt   int64 // entries rejected (bad magic/fingerprint/decode)
	Saves     int64 // successful Save calls
	SaveFails int64 // Save calls that could not persist
}

// MemStore is the in-memory SummaryStore: a map from fingerprint to
// summary. It is what the verifier's once-map cache has always been,
// behind the store interface — useful for sharing summaries across
// Verifier instances within one process and as the reference
// implementation in tests.
type MemStore struct {
	mu    sync.Mutex
	m     map[ir.Fingerprint]*symbex.Summary
	stats StoreStats
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: map[ir.Fingerprint]*symbex.Summary{}} }

// Load implements SummaryStore.
func (s *MemStore) Load(fp ir.Fingerprint) (*symbex.Summary, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum, ok := s.m[fp]
	if ok {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	return sum, ok
}

// Save implements SummaryStore.
func (s *MemStore) Save(fp ir.Fingerprint, sum *symbex.Summary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[fp] = sum
	s.stats.Saves++
}

// Stats returns a snapshot of the store counters.
func (s *MemStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// DiskStore is the persistent, content-addressed SummaryStore: one file
// per summary key (StoreKey: program fingerprint + Step-1 context)
// under a directory, in the EncodeSummary format framed by a header
// that repeats the key and a content checksum. Entries that fail any
// check — wrong magic, wrong embedded key (a renamed or hand-edited
// file), wrong checksum, or a codec error — are treated as misses, so a
// corrupted store degrades to re-summarizing, never to wrong verdicts.
// Writes go through a temporary file plus rename, so concurrent readers
// see only complete entries.
type DiskStore struct {
	dir string

	hits      atomic.Int64
	misses    atomic.Int64
	corrupt   atomic.Int64
	saves     atomic.Int64
	saveFails atomic.Int64
}

// diskMagic frames store files; the payload carries its own summary
// format version.
const diskMagic = "VSDSTORE1\n"

// summaryExt is the store-file suffix.
const summaryExt = ".vsum"

// NewDiskStore opens (creating if needed) the store rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("verify: opening summary store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(fp ir.Fingerprint) string {
	return filepath.Join(s.dir, fp.String()+summaryExt)
}

// Path returns the file a given key is (or would be) stored at. It
// exists for the fault-injection harness and for operational tooling;
// writing to the path directly bypasses the store's durability
// protocol.
func (s *DiskStore) Path(fp ir.Fingerprint) string { return s.path(fp) }

// Load implements SummaryStore.
func (s *DiskStore) Load(fp ir.Fingerprint) (*symbex.Summary, bool) {
	data, err := os.ReadFile(s.path(fp))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	sum, err := decodeStoreFile(fp, data)
	if err != nil {
		s.corrupt.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return sum, true
}

// decodeStoreFile validates the framing and decodes the payload.
func decodeStoreFile(fp ir.Fingerprint, data []byte) (*symbex.Summary, error) {
	if len(data) < len(diskMagic)+len(fp)+sha256.Size {
		return nil, fmt.Errorf("verify: store entry truncated (%d bytes)", len(data))
	}
	if string(data[:len(diskMagic)]) != diskMagic {
		return nil, fmt.Errorf("verify: store entry has bad magic")
	}
	data = data[len(diskMagic):]
	var got ir.Fingerprint
	copy(got[:], data)
	if got != fp {
		return nil, fmt.Errorf("verify: store entry fingerprint mismatch: %s under key %s", got, fp)
	}
	data = data[len(fp):]
	payload, check := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sha256.Sum256(payload) != [sha256.Size]byte(check) {
		return nil, fmt.Errorf("verify: store entry checksum mismatch")
	}
	return symbex.DecodeSummary(payload)
}

// Save implements SummaryStore.
func (s *DiskStore) Save(fp ir.Fingerprint, sum *symbex.Summary) {
	payload := symbex.EncodeSummary(sum)
	buf := make([]byte, 0, len(diskMagic)+len(fp)+len(payload)+sha256.Size)
	buf = append(buf, diskMagic...)
	buf = append(buf, fp[:]...)
	buf = append(buf, payload...)
	check := sha256.Sum256(payload)
	buf = append(buf, check[:]...)
	tmp, err := os.CreateTemp(s.dir, "tmp-*"+summaryExt)
	if err != nil {
		s.saveFails.Add(1)
		return
	}
	// Write, fsync, close, rename, fsync the directory: the entry must
	// be durable before it becomes visible under its key, and the rename
	// must itself survive a crash (a torn entry would be caught by the
	// checksum and degrade to a miss, but a journaled service should not
	// re-summarize after every power cut either).
	_, werr := tmp.Write(buf)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		s.saveFails.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), s.path(fp)); err != nil {
		os.Remove(tmp.Name())
		s.saveFails.Add(1)
		return
	}
	syncDir(s.dir)
	s.saves.Add(1)
}

// syncDir fsyncs a directory so a completed rename survives a crash.
// Best-effort: some filesystems refuse directory fsync; the checksum
// framing still protects readers.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Stats returns a snapshot of the store counters.
func (s *DiskStore) Stats() StoreStats {
	return StoreStats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Corrupt:   s.corrupt.Load(),
		Saves:     s.saves.Load(),
		SaveFails: s.saveFails.Load(),
	}
}

// Len reports the number of complete entries currently in the store.
func (s *DiskStore) Len() (int, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range ents {
		name := e.Name()
		if filepath.Ext(name) == summaryExt && len(name) == 64+len(summaryExt) {
			n++
		}
	}
	return n, nil
}
