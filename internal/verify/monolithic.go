package verify

import (
	"fmt"

	"vsd/internal/click"
	"vsd/internal/expr"
	"vsd/internal/ir"
	"vsd/internal/smt"
	"vsd/internal/symbex"
)

// MonolithicReport is the outcome of the baseline whole-pipeline
// verification.
type MonolithicReport struct {
	Completed     bool // false when the budget was exhausted
	Crashes       int  // crashing paths found
	Paths         int  // total feasible paths explored
	MaxSteps      int64
	SymbexStats   symbex.Stats
	BudgetReached string // description of the exhausted budget, if any
}

// Monolithic verifies the pipeline the way the paper's baseline does:
// inline everything into one program and symbolically execute it whole,
// with no decomposition, no summary reuse, and loops unrolled. The
// explored path count is ~2^(k·n) instead of the compositional ~k·2^n,
// which is why the paper's baseline did not finish within 12 hours. The
// budget options make the blow-up observable at benchmark scale instead
// of wall-clock scale.
func Monolithic(p *click.Pipeline, opts Options) (*MonolithicReport, error) {
	if opts.MinLen == 0 {
		opts.MinLen = 14
	}
	if opts.MaxLen == 0 {
		opts.MaxLen = 1514
	}
	prog, err := click.Inline(p)
	if err != nil {
		return nil, fmt.Errorf("verify: inlining: %w", err)
	}
	sopts := opts.Symbex
	sopts.LoopMode = symbex.LoopUnroll // "without ... any of the presented ideas"
	engine := symbex.New(smt.New(opts.solverOptions()), sopts)
	// Pipeline ingress semantics match the compositional verifier:
	// metadata annotations start zeroed.
	input := symbex.DefaultInput(opts.MinLen, opts.MaxLen)
	input.Meta = map[string]*expr.Expr{}
	for slot, w := range prog.MetaSlots {
		input.Meta[slot] = expr.Const(w, 0)
	}
	segs, err := engine.Run(prog, input)
	rep := &MonolithicReport{SymbexStats: engine.Stats()}
	if err != nil {
		rep.BudgetReached = err.Error()
		return rep, nil
	}
	rep.Completed = true
	rep.Paths = len(segs)
	for _, s := range segs {
		if s.Disposition == ir.Crashed {
			rep.Crashes++
		}
		if s.Disposition != ir.Crashed && s.Steps > rep.MaxSteps {
			rep.MaxSteps = s.Steps
		}
	}
	return rep, nil
}
