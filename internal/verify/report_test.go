package verify

import "testing"

// Golden tests pin the CLI witness rendering: vsdverify output is an
// interface (scripts and the examples grep it), so format drift must be
// a deliberate, reviewed change.

func TestFormatWitnessGolden(t *testing.T) {
	w := Witness{
		Packet: []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02, 0x03,
			0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d},
		Path:   "src[0] -> e2[0]",
		Detail: "assert: in >= 0 in ToyE2",
	}
	want := `  path:   src[0] -> e2[0]
  detail: assert: in >= 0 in ToyE2
  packet: (18 bytes)
    0000: de ad be ef 00 01 02 03 04 05 06 07 08 09 0a 0b
    0010: 0c 0d
`
	if got := FormatWitness(w); got != want {
		t.Errorf("FormatWitness drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestFormatWitnessTruncationGolden(t *testing.T) {
	pkt := make([]byte, 80)
	for i := range pkt {
		pkt[i] = byte(i)
	}
	w := Witness{Packet: pkt, Path: "p", Detail: "d"}
	want := `  path:   p
  detail: d
  packet: (80 bytes)
    0000: 00 01 02 03 04 05 06 07 08 09 0a 0b 0c 0d 0e 0f
    0010: 10 11 12 13 14 15 16 17 18 19 1a 1b 1c 1d 1e 1f
    0020: 20 21 22 23 24 25 26 27 28 29 2a 2b 2c 2d 2e 2f
    0030: 30 31 32 33 34 35 36 37 38 39 3a 3b 3c 3d 3e 3f … (+16)
`
	if got := FormatWitness(w); got != want {
		t.Errorf("FormatWitness truncation drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestFormatSpecWitnessGolden pins the spec-violation shape: the output
// packet dump with change markers on the bytes the pipeline rewrote.
func TestFormatSpecWitnessGolden(t *testing.T) {
	w := Witness{
		Packet: []byte{0x45, 0x00, 0x00, 0x14, 0x40, 0x00},
		Output: []byte{0x45, 0x00, 0x00, 0x14, 0x3e, 0x00},
		Path:   "src[0] -> ttl[0] -> encap[0]",
		Detail: "spec ttl-decrement: postcondition violated (egress encap[0])",
	}
	want := `  path:   src[0] -> ttl[0] -> encap[0]
  detail: spec ttl-decrement: postcondition violated (egress encap[0])
  packet: (6 bytes)
    0000: 45 00 00 14 40 00
  output: (6 bytes, * marks bytes changed by the pipeline)
    0000: 45  00  00  14  3e* 00
`
	if got := FormatWitness(w); got != want {
		t.Errorf("spec witness format drifted:\n got:\n%q\nwant:\n%q", got, want)
	}
}
