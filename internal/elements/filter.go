package elements

import (
	"fmt"
	"strconv"

	"vsd/internal/ir"
	"vsd/internal/packet"
)

// filterRule is one parsed IPFilter rule.
type filterRule struct {
	allow    bool
	proto    int // -1 = any
	src, dst *cidr
	sport    int // -1 = any
	dport    int
}

// parseFilterRules parses comma-separated rules of the form
//
//	allow|deny [proto udp|tcp|icmp|N] [src CIDR] [dst CIDR]
//	           [sport N] [dport N]
//
// e.g. IPFilter(allow proto udp dport 53, deny dst 10.0.0.0/8, allow).
// The first matching rule decides; packets matching no rule are denied,
// as in firewall convention.
func parseFilterRules(cfg string) ([]filterRule, error) {
	args := splitArgs(cfg)
	if len(args) == 0 {
		return nil, fmt.Errorf("IPFilter wants at least one rule")
	}
	var rules []filterRule
	for _, arg := range args {
		f := fields(arg)
		if len(f) == 0 {
			return nil, fmt.Errorf("empty rule")
		}
		r := filterRule{proto: -1, sport: -1, dport: -1}
		switch f[0] {
		case "allow":
			r.allow = true
		case "deny":
		default:
			return nil, fmt.Errorf("rule %q must start with allow or deny", arg)
		}
		i := 1
		for i < len(f) {
			if i+1 >= len(f) {
				return nil, fmt.Errorf("dangling keyword %q in %q", f[i], arg)
			}
			key, val := f[i], f[i+1]
			i += 2
			switch key {
			case "proto":
				switch val {
				case "icmp":
					r.proto = packet.ProtoICMP
				case "tcp":
					r.proto = packet.ProtoTCP
				case "udp":
					r.proto = packet.ProtoUDP
				default:
					n, err := strconv.Atoi(val)
					if err != nil || n < 0 || n > 255 {
						return nil, fmt.Errorf("bad proto %q", val)
					}
					r.proto = n
				}
			case "src", "dst":
				c, err := parseCIDR(val)
				if err != nil {
					return nil, err
				}
				if key == "src" {
					r.src = &c
				} else {
					r.dst = &c
				}
			case "sport", "dport":
				n, err := parseUint(val, 0xffff)
				if err != nil {
					return nil, err
				}
				if key == "sport" {
					r.sport = int(n)
				} else {
					r.dport = int(n)
				}
			default:
				return nil, fmt.Errorf("unknown keyword %q in rule %q", key, arg)
			}
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// IPFilter(RULES) implements a stateless packet filter over IPv4
// headers. Allowed packets leave on output 0, denied packets are
// dropped. Like Click's IPFilter it reads header fields directly and is
// meant to run after CheckIPHeader; the verifier confirms the
// combination never faults.
func IPFilter(cfg string) (*ir.Program, error) {
	rules, err := parseFilterRules(cfg)
	if err != nil {
		return nil, err
	}
	needPorts := false
	for _, r := range rules {
		if r.sport >= 0 || r.dport >= 0 {
			needPorts = true
		}
	}
	b := ir.NewBuilder("IPFilter", 1, 1)
	hoff := b.MetaLoad(packet.MetaHeaderOffset, 32)
	proto := b.LoadPkt(b.BinC(ir.Add, hoff, 9), 1)
	src := b.LoadPkt(b.BinC(ir.Add, hoff, 12), 4)
	dst := b.LoadPkt(b.BinC(ir.Add, hoff, 16), 4)
	var sport, dport ir.Reg
	if needPorts {
		// Guarded like NetFlow: a valid IP header does not imply a
		// transport header follows. Packets without one read ports as
		// zero (so port rules cannot match them).
		b0 := b.LoadPkt(hoff, 1)
		ihl := b.ZExt(b.BinC(ir.And, b0, 0x0f), 32)
		l4 := b.Bin(ir.Add, hoff, b.BinC(ir.Mul, ihl, 4))
		sport = b.Mov(b.ConstU(16, 0))
		dport = b.Mov(b.ConstU(16, 0))
		plen := b.PktLen()
		hasL4 := b.Bin(ir.Ule, b.BinC(ir.Add, l4, 4), plen)
		b.If(hasL4, func() {
			b.SetReg(sport, b.LoadPkt(l4, 2))
			b.SetReg(dport, b.LoadPkt(b.BinC(ir.Add, l4, 2), 2))
		}, nil)
	}
	var apply func(i int)
	apply = func(i int) {
		if i == len(rules) {
			b.Drop() // default deny
			return
		}
		r := rules[i]
		cond := b.ConstU(1, 1)
		if r.proto >= 0 {
			cond = b.Bin(ir.And, cond, b.BinC(ir.Eq, proto, uint64(r.proto)))
		}
		if r.src != nil {
			lo, hi := r.src.Range()
			geLo := b.Bin(ir.Ule, b.ConstU(32, uint64(lo)), src)
			leHi := b.Bin(ir.Ule, src, b.ConstU(32, uint64(hi)))
			cond = b.Bin(ir.And, cond, b.Bin(ir.And, geLo, leHi))
		}
		if r.dst != nil {
			lo, hi := r.dst.Range()
			geLo := b.Bin(ir.Ule, b.ConstU(32, uint64(lo)), dst)
			leHi := b.Bin(ir.Ule, dst, b.ConstU(32, uint64(hi)))
			cond = b.Bin(ir.And, cond, b.Bin(ir.And, geLo, leHi))
		}
		if r.sport >= 0 {
			cond = b.Bin(ir.And, cond, b.BinC(ir.Eq, sport, uint64(r.sport)))
		}
		if r.dport >= 0 {
			cond = b.Bin(ir.And, cond, b.BinC(ir.Eq, dport, uint64(r.dport)))
		}
		b.If(cond, func() {
			if r.allow {
				b.Emit(0)
			} else {
				b.Drop()
			}
		}, func() {
			apply(i + 1)
		})
	}
	apply(0)
	b.Drop()
	return b.Build()
}
