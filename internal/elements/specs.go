package elements

import (
	"fmt"

	"vsd/internal/expr"
)

// This file exposes element transform semantics as symbolic expressions
// (DESIGN.md §6): declarative restatements of what an element's IR
// computes, precise enough for the functional-spec layer
// (internal/specs) to prove input/output contracts against. The helpers
// deliberately re-derive behavior from the same parsed configuration the
// element compiles, so a divergence between an element's IR and its
// declared semantics surfaces as a verification failure with a concrete
// input/output witness — not as a silently vacuous spec.

// FilterAllowExpr re-derives IPFilter's first-match allow predicate over
// a symbolic packet: the same field reads the element compiles to IR —
// including the guarded transport-port loads, where ports read as zero
// when no L4 header fits the packet — and the same first-match fold with
// default deny. cfg is the element's rule string; in and plen are the
// packet array and 32-bit length to read from; ipOff is the concrete
// offset of the IPv4 header.
func FilterAllowExpr(cfg string, in *expr.Array, plen *expr.Expr, ipOff uint64) (*expr.Expr, error) {
	rules, err := parseFilterRules(cfg)
	if err != nil {
		return nil, err
	}
	at := func(off uint64, n int) *expr.Expr {
		return expr.SelectWide(in, expr.Const(32, off), n)
	}
	proto := at(ipOff+9, 1)
	src := at(ipOff+12, 4)
	dst := at(ipOff+16, 4)
	b0 := at(ipOff, 1)
	ihl := expr.ZExt(expr.BvAnd(b0, expr.Const(8, 0x0f)), 32)
	l4 := expr.Add(expr.Const(32, ipOff), expr.Mul(ihl, expr.Const(32, 4)))
	hasL4 := expr.Ule(expr.Add(l4, expr.Const(32, 4)), plen)
	sport := expr.Ite(hasL4, expr.SelectWide(in, l4, 2), expr.Const(16, 0))
	dport := expr.Ite(hasL4, expr.SelectWide(in, expr.Add(l4, expr.Const(32, 2)), 2), expr.Const(16, 0))

	// First matching rule decides; no match is a deny.
	verdict := expr.False()
	for i := len(rules) - 1; i >= 0; i-- {
		r := rules[i]
		cond := expr.True()
		if r.proto >= 0 {
			cond = expr.And(cond, expr.Eq(proto, expr.Const(8, uint64(r.proto))))
		}
		for _, m := range []struct {
			c    *cidr
			addr *expr.Expr
		}{{r.src, src}, {r.dst, dst}} {
			if m.c == nil {
				continue
			}
			lo, hi := m.c.Range()
			cond = expr.And(cond,
				expr.Ule(expr.Const(32, uint64(lo)), m.addr),
				expr.Ule(m.addr, expr.Const(32, uint64(hi))))
		}
		if r.sport >= 0 {
			cond = expr.And(cond, expr.Eq(sport, expr.Const(16, uint64(r.sport))))
		}
		if r.dport >= 0 {
			cond = expr.And(cond, expr.Eq(dport, expr.Const(16, uint64(r.dport))))
		}
		verdict = expr.Ite(cond, expr.Bool(r.allow), verdict)
	}
	return verdict, nil
}

// SNATNewSrc parses an IPRewriter configuration ("SNAT NEWSRC") and
// returns the source address the element rewrites packets to — the
// element's declared transform, for the NAT consistency spec.
func SNATNewSrc(cfg string) (uint32, error) {
	f := fields(cfg)
	if len(f) != 2 || f[0] != "SNAT" {
		return 0, fmt.Errorf("SNATNewSrc wants an IPRewriter config (SNAT NEWSRC), got %q", cfg)
	}
	return parseIP4(f[1])
}

// ChecksumPatchExpr is the RFC 1624 incremental checksum update as an
// expression: the new checksum implied by rewriting one header halfword
// from oldHW to newHW under old checksum oldCk (all 16-bit).
// CheckIPHeader's validation, DecIPTTL's patch, and the checksum
// functional spec all agree on this arithmetic.
func ChecksumPatchExpr(oldCk, oldHW, newHW *expr.Expr) *expr.Expr {
	t := expr.Add(expr.ZExt(expr.Not(oldCk), 32), expr.ZExt(expr.Not(oldHW), 32))
	t = expr.Add(t, expr.ZExt(newHW, 32))
	t = expr.Add(expr.BvAnd(t, expr.Const(32, 0xffff)), expr.LShr(t, expr.Const(32, 16)))
	t = expr.Add(expr.BvAnd(t, expr.Const(32, 0xffff)), expr.LShr(t, expr.Const(32, 16)))
	return expr.Not(expr.Trunc(t, 16))
}
