package elements

import (
	"fmt"

	"vsd/internal/ir"
	"vsd/internal/packet"
)

// CheckIPHeader validates the IPv4 header at the current header offset:
// the fixed header must fit the packet, the version must be 4, IHL >= 5,
// the full header and the total length must fit, and (unless configured
// with NOCHECKSUM) the header checksum must verify. Valid packets leave
// on output 0, invalid ones on output 1.
//
// This is the element that makes everything downstream safe: DecIPTTL,
// LookupIPRoute, and IPOptions read header fields without re-checking
// bounds, and the verifier proves the combination correct — the
// cross-element reasoning at the heart of the paper.
func CheckIPHeader(cfg string) (*ir.Program, error) {
	checksum := true
	for _, arg := range splitArgs(cfg) {
		switch arg {
		case "NOCHECKSUM":
			checksum = false
		case "":
		default:
			return nil, fmt.Errorf("CheckIPHeader: unknown option %q", arg)
		}
	}
	b := ir.NewBuilder("CheckIPHeader", 1, 2)
	hoff := b.MetaLoad(packet.MetaHeaderOffset, 32)
	plen := b.PktLen()

	bad := func(cond ir.Reg) {
		b.If(cond, func() { b.Emit(1) }, nil)
	}

	// Fixed header must fit (checked before any load, so this element
	// never faults on short packets).
	end20 := b.BinC(ir.Add, hoff, packet.IPv4MinHeaderLen)
	bad(b.Not(b.Bin(ir.Ule, end20, plen)))

	b0 := b.LoadPkt(hoff, 1)
	version := b.BinC(ir.LShr, b0, 4)
	bad(b.Not(b.BinC(ir.Eq, version, 4)))

	ihl := b.ZExt(b.BinC(ir.And, b0, 0x0f), 32)
	bad(b.BinC(ir.Ult, ihl, 5))

	hlen := b.BinC(ir.Mul, ihl, 4)
	hend := b.Bin(ir.Add, hoff, hlen)
	bad(b.Not(b.Bin(ir.Ule, hend, plen)))

	totLen := b.ZExt(b.LoadPkt(b.BinC(ir.Add, hoff, 2), 2), 32)
	bad(b.Bin(ir.Ult, totLen, hlen))
	bad(b.Not(b.Bin(ir.Ule, b.Bin(ir.Add, hoff, totLen), plen)))

	if checksum {
		// RFC 1071 over the header halfwords; a correct header sums to
		// 0xffff after end-around folding.
		sum := b.Mov(b.ConstU(32, 0))
		halfwords := b.BinC(ir.Mul, ihl, 2)
		j := b.Mov(b.ConstU(32, 0))
		b.Loop(packet.IPv4MaxHeaderLen/2, func() {
			b.If(b.Bin(ir.Ule, halfwords, j), func() { b.Break() }, nil)
			hw := b.LoadPkt(b.Bin(ir.Add, hoff, b.BinC(ir.Mul, j, 2)), 2)
			b.SetReg(sum, b.Bin(ir.Add, sum, b.ZExt(hw, 32)))
			b.SetReg(j, b.BinC(ir.Add, j, 1))
		})
		// Two folds suffice: 30 halfwords sum below 2^21.
		fold := func() {
			lo := b.BinC(ir.And, sum, 0xffff)
			hi := b.BinC(ir.LShr, sum, 16)
			b.SetReg(sum, b.Bin(ir.Add, lo, hi))
		}
		fold()
		fold()
		bad(b.Not(b.BinC(ir.Eq, sum, 0xffff)))
	}
	b.Emit(0)
	return b.Build()
}

// decTTLBody is the shared body of DecIPTTL and BuggyDecIPTTL: guard
// low TTLs out to port 1, subtract dec from the ttl|protocol halfword,
// and patch the checksum for the value actually written.
func decTTLBody(name string, dec uint64) (*ir.Program, error) {
	b := ir.NewBuilder(name, 1, 2)
	hoff := b.MetaLoad(packet.MetaHeaderOffset, 32)
	ttl := b.LoadPkt(b.BinC(ir.Add, hoff, 8), 1)
	b.If(b.BinC(ir.Ule, ttl, 1), func() { b.Emit(1) }, nil)

	// Decrement TTL within the ttl|protocol halfword and patch the
	// checksum: sum' = ~(~sum + ~old + new), end-around.
	oldHW := b.LoadPkt(b.BinC(ir.Add, hoff, 8), 2)
	newHW := b.BinC(ir.Sub, oldHW, dec<<8)
	b.StorePkt(b.BinC(ir.Add, hoff, 8), newHW, 2)

	ck := b.LoadPkt(b.BinC(ir.Add, hoff, 10), 2)
	t := b.Bin(ir.Add, b.ZExt(b.Not(ck), 32), b.ZExt(b.Not(oldHW), 32))
	t = b.Bin(ir.Add, t, b.ZExt(newHW, 32))
	// Fold carries twice, then complement.
	t = b.Bin(ir.Add, b.BinC(ir.And, t, 0xffff), b.BinC(ir.LShr, t, 16))
	t = b.Bin(ir.Add, b.BinC(ir.And, t, 0xffff), b.BinC(ir.LShr, t, 16))
	newCk := b.Not(b.Trunc(t, 16))
	b.StorePkt(b.BinC(ir.Add, hoff, 10), newCk, 2)
	b.Emit(0)
	return b.Build()
}

// DecIPTTL decrements the IPv4 TTL and incrementally updates the header
// checksum (RFC 1624). Packets whose TTL is 0 or 1 leave on output 1
// (for ICMP time-exceeded handling); the rest leave on output 0. The
// element reads and writes the header without bounds checks — it is
// only safe after CheckIPHeader, and the verifier proves exactly that.
func DecIPTTL(cfg string) (*ir.Program, error) {
	if cfg != "" {
		return nil, fmt.Errorf("DecIPTTL takes no configuration")
	}
	return decTTLBody("DecIPTTL", 1)
}

// BuggyDecIPTTL is a deliberately broken DecIPTTL for the functional-
// spec demonstrations: it decrements the TTL by TWO instead of one. Its
// checksum patch is internally consistent (it patches for the value it
// actually wrote), so the pipeline stays crash-free and checksum-correct
// — only the TTL-decrement functional spec catches the bug, with a
// concrete input/output witness pair.
func BuggyDecIPTTL(cfg string) (*ir.Program, error) {
	if cfg != "" {
		return nil, fmt.Errorf("BuggyDecIPTTL takes no configuration")
	}
	return decTTLBody("BuggyDecIPTTL", 2)
}

// maxIPOptionIters bounds the option walk: at most 40 option bytes, and
// the smallest option (NOP/EOL) is one byte.
const maxIPOptionIters = packet.IPv4MaxHeaderLen - packet.IPv4MinHeaderLen

// IPOptions walks the IPv4 options area (the loop the paper highlights:
// unrolled it is "millions of segments", decomposed into mini-elements
// it verifies in minutes). Well-formed packets leave on output 0;
// packets with malformed options (truncated option, length < 2, length
// overrunning the header) leave on output 1.
//
// Like Click's IP options handling it assumes a validated header
// (CheckIPHeader upstream): the cursor stays within hoff+ihl*4, which
// CheckIPHeader proved to be within the packet.
func IPOptions(cfg string) (*ir.Program, error) {
	if cfg != "" {
		return nil, fmt.Errorf("IPOptions takes no configuration")
	}
	b := ir.NewBuilder("IPOptions", 1, 2)
	hoff := b.MetaLoad(packet.MetaHeaderOffset, 32)
	b0 := b.LoadPkt(hoff, 1)
	ihl := b.ZExt(b.BinC(ir.And, b0, 0x0f), 32)
	optEnd := b.Bin(ir.Add, hoff, b.BinC(ir.Mul, ihl, 4))
	cur := b.Mov(b.BinC(ir.Add, hoff, packet.IPv4MinHeaderLen))

	b.Loop(maxIPOptionIters, func() {
		done := b.Bin(ir.Ule, optEnd, cur)
		b.If(done, func() { b.Break() }, nil)
		typ := b.LoadPkt(cur, 1)
		// End of option list: stop processing.
		b.If(b.BinC(ir.Eq, typ, 0), func() { b.Break() }, nil)
		// No-operation: single byte.
		b.If(b.BinC(ir.Eq, typ, 1), func() {
			b.SetReg(cur, b.BinC(ir.Add, cur, 1))
		}, func() {
			// TLV option: the length byte must fit, be >= 2, and not
			// overrun the options area.
			lenOff := b.BinC(ir.Add, cur, 1)
			b.If(b.Not(b.Bin(ir.Ult, lenOff, optEnd)), func() { b.Emit(1) }, nil)
			olen := b.ZExt(b.LoadPkt(lenOff, 1), 32)
			b.If(b.BinC(ir.Ult, olen, 2), func() { b.Emit(1) }, nil)
			next := b.Bin(ir.Add, cur, olen)
			b.If(b.Not(b.Bin(ir.Ule, next, optEnd)), func() { b.Emit(1) }, nil)
			b.SetReg(cur, next)
		})
	})
	b.Emit(0)
	return b.Build()
}
