package elements

import (
	"fmt"

	"vsd/internal/click"
	"vsd/internal/ir"
)

// InfiniteSource marks pipeline ingress: packets enter here. Its body
// is a plain hand-off; the symbolic packet of the verifier and the
// concrete packets of the runtime both start at this element's output.
func InfiniteSource(cfg string) (*ir.Program, error) {
	b := ir.NewBuilder("InfiniteSource", 0, 1)
	b.Emit(0)
	return b.Build()
}

// Discard drops every packet: pipeline egress for unwanted traffic.
func Discard(cfg string) (*ir.Program, error) {
	b := ir.NewBuilder("Discard", 1, 0)
	b.Drop()
	return b.Build()
}

// ToyE1 is element E1 from the paper's Fig. 2, over the packet's first
// byte interpreted as a signed 8-bit integer:
//
//	if in < 0 { out = 0 } else { out = in }
//
// It clamps negatives to zero, which is what makes the downstream
// ToyE2's assertion unreachable in composition.
func ToyE1(cfg string) (*ir.Program, error) {
	if cfg != "" {
		return nil, fmt.Errorf("ToyE1 takes no configuration")
	}
	b := ir.NewBuilder("ToyE1", 1, 1)
	v := b.LoadPktC(0, 1)
	neg := b.Bin(ir.Slt, v, b.ConstU(8, 0))
	b.If(neg, func() {
		b.StorePkt(b.ConstU(32, 0), b.ConstU(8, 0), 1)
	}, nil)
	b.Emit(0)
	return b.Build()
}

// ToyE2 is element E2 from the paper's Fig. 2:
//
//	assert in >= 0
//	if in < 10 { out = 10 } else { out = in }
//
// In isolation the assertion gives it a suspect (crashing) segment e3;
// composed after ToyE1 the paper shows paths p1 and p4 are infeasible
// and the pipeline is crash-free.
func ToyE2(cfg string) (*ir.Program, error) {
	if cfg != "" {
		return nil, fmt.Errorf("ToyE2 takes no configuration")
	}
	b := ir.NewBuilder("ToyE2", 1, 1)
	v := b.LoadPktC(0, 1)
	nonNeg := b.Bin(ir.Sle, b.ConstU(8, 0), v)
	b.Assert(nonNeg, "in >= 0")
	b.If(b.Bin(ir.Slt, v, b.ConstU(8, 10)), func() {
		b.StorePkt(b.ConstU(32, 0), b.ConstU(8, 10), 1)
	}, nil)
	b.Emit(0)
	return b.Build()
}

// UnsafeReader is a deliberately buggy third-party element for the
// app-market scenario: it reads a fixed-size window without checking
// the packet length first, so short packets fault it. The verifier
// rejects it with a witness; FixedReader below is the corrected
// submission.
func UnsafeReader(cfg string) (*ir.Program, error) {
	off, err := parseUint(cfg, 1<<16)
	if err != nil {
		return nil, err
	}
	b := ir.NewBuilder("UnsafeReader", 1, 1)
	v := b.LoadPktC(off, 4) // no length check: suspect, and feasibly so
	b.MetaStore("scratch", v)
	b.Emit(0)
	return b.Build()
}

// FixedReader is UnsafeReader with the missing length check: packets
// too short to contain the window are passed through untouched.
func FixedReader(cfg string) (*ir.Program, error) {
	off, err := parseUint(cfg, 1<<16)
	if err != nil {
		return nil, err
	}
	b := ir.NewBuilder("FixedReader", 1, 1)
	plen := b.PktLen()
	inRange := b.Bin(ir.Ule, b.ConstU(32, off+4), plen)
	b.If(inRange, func() {
		v := b.LoadPktC(off, 4)
		b.MetaStore("scratch", v)
	}, nil)
	b.Emit(0)
	return b.Build()
}

// Default returns the element registry with every class in this
// package, including the Click-compatible aliases used in published
// configurations.
func Default() *click.Registry {
	r := click.NewRegistry()
	r.Register("InfiniteSource", InfiniteSource)
	r.Register("FromDevice", InfiniteSource)
	r.Register("Discard", Discard)
	r.Register("ToDevice", Discard)
	r.Register("Strip", Strip)
	r.Register("Unstrip", Unstrip)
	r.Register("EtherEncap", EtherEncap)
	r.Register("Classifier", Classifier)
	r.Register("CheckLength", CheckLength)
	r.Register("Paint", Paint)
	r.Register("CheckIPHeader", CheckIPHeader)
	r.Register("DecIPTTL", DecIPTTL)
	r.Register("BuggyDecIPTTL", BuggyDecIPTTL)
	r.Register("IPOptions", IPOptions)
	r.Register("LookupIPRoute", LookupIPRoute)
	r.Register("IPFilter", IPFilter)
	r.Register("Counter", Counter)
	r.Register("NetFlow", NetFlow)
	r.Register("IPRewriter", IPRewriter)
	r.Register("TokenBucket", TokenBucket)
	r.Register("LeakyNAT", LeakyNAT)
	r.Register("ToyE1", ToyE1)
	r.Register("ToyE2", ToyE2)
	r.Register("UnsafeReader", UnsafeReader)
	r.Register("FixedReader", FixedReader)
	return r
}
