package elements

import (
	"fmt"
	"sort"

	"vsd/internal/ir"
	"vsd/internal/packet"
)

// routeEntry is one parsed route: prefix -> (gateway, output port).
type routeEntry struct {
	prefix cidr
	gw     uint32
	port   int
}

// lpmRoute resolves longest-prefix-match over parsed routes for one
// address; used both by the range compiler and as the reference
// implementation in tests.
func lpmRoute(routes []routeEntry, addr uint32) (routeEntry, bool) {
	best := -1
	for i, r := range routes {
		lo, hi := r.prefix.Range()
		if addr < lo || addr > hi {
			continue
		}
		if best == -1 || r.prefix.Bits > routes[best].prefix.Bits {
			best = i
		}
	}
	if best == -1 {
		return routeEntry{}, false
	}
	return routes[best], true
}

// noRouteSentinel marks "no matching route" in the compiled table value
// (port byte 0xff).
const noRouteSentinel = 0xff

// compileLPM turns a route list into disjoint [lo, hi] -> value ranges,
// longest prefix winning, with adjacent equal-valued ranges merged.
// The value packs gateway<<8 | port. This is the paper's array-chain
// observation made concrete: a symbolic lookup forks one path per range
// (a handful), not one per address or per table entry.
func compileLPM(routes []routeEntry) []ir.RangeEntry {
	// Collect elementary interval boundaries: each prefix contributes
	// [lo, hi]; boundaries at lo and hi+1.
	bounds := map[uint64]bool{0: true}
	for _, r := range routes {
		lo, hi := r.prefix.Range()
		bounds[uint64(lo)] = true
		bounds[uint64(hi)+1] = true
	}
	pts := make([]uint64, 0, len(bounds))
	for p := range bounds {
		if p <= uint64(^uint32(0)) {
			pts = append(pts, p)
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	var out []ir.RangeEntry
	for i, lo := range pts {
		hi := uint64(^uint32(0))
		if i+1 < len(pts) {
			hi = pts[i+1] - 1
		}
		val := uint64(noRouteSentinel)
		if r, ok := lpmRoute(routes, uint32(lo)); ok {
			val = uint64(r.gw)<<8 | uint64(r.port)
		}
		// Merge with the previous range when the value repeats.
		if n := len(out); n > 0 && out[n-1].Val == val && out[n-1].Hi+1 == lo {
			out[n-1].Hi = hi
			continue
		}
		out = append(out, ir.RangeEntry{Lo: lo, Hi: hi, Val: val})
	}
	// Drop sentinel ranges only if that leaves the table default to
	// cover them; keeping them explicit is simpler and equally compact.
	return out
}

// parseRoutes parses "CIDR [GW] PORT" entries, comma-separated, Click's
// LookupIPRoute flavor:
//
//	LookupIPRoute(10.0.0.0/8 1, 192.168.0.0/16 10.0.0.1 2, 0.0.0.0/0 0)
func parseRoutes(cfg string) ([]routeEntry, int, error) {
	args := splitArgs(cfg)
	if len(args) == 0 {
		return nil, 0, fmt.Errorf("LookupIPRoute wants at least one route")
	}
	var routes []routeEntry
	maxPort := 0
	for _, arg := range args {
		f := fields(arg)
		var r routeEntry
		var err error
		switch len(f) {
		case 2:
			r.prefix, err = parseCIDR(f[0])
			if err != nil {
				return nil, 0, err
			}
			p, err := parseUint(f[1], 250)
			if err != nil {
				return nil, 0, err
			}
			r.port = int(p)
		case 3:
			r.prefix, err = parseCIDR(f[0])
			if err != nil {
				return nil, 0, err
			}
			r.gw, err = parseIP4(f[1])
			if err != nil {
				return nil, 0, err
			}
			p, err := parseUint(f[2], 250)
			if err != nil {
				return nil, 0, err
			}
			r.port = int(p)
		default:
			return nil, 0, fmt.Errorf("bad route %q (want CIDR [GW] PORT)", arg)
		}
		if r.port > maxPort {
			maxPort = r.port
		}
		routes = append(routes, r)
	}
	return routes, maxPort, nil
}

// LookupIPRoute(CIDR [GW] PORT, ...) performs longest-prefix-match
// routing on the IPv4 destination address: the matched route's gateway
// is stored in the gw annotation and the packet leaves on the route's
// output port. Packets matching no route are dropped. The route table is
// static state, compiled to a range table at configuration time.
func LookupIPRoute(cfg string) (*ir.Program, error) {
	routes, maxPort, err := parseRoutes(cfg)
	if err != nil {
		return nil, err
	}
	table := &ir.StaticTable{
		Name:    "routes",
		KeyW:    32,
		ValW:    64,
		Entries: compileLPM(routes),
		Default: noRouteSentinel,
	}
	b := ir.NewBuilder("LookupIPRoute", 1, maxPort+1)
	b.DeclareTable(table)
	hoff := b.MetaLoad(packet.MetaHeaderOffset, 32)
	dst := b.LoadPkt(b.BinC(ir.Add, hoff, 16), 4)
	val := b.StaticLookup("routes", b.ZExt(dst, 32))
	port := b.Trunc(val, 8)
	gw := b.Trunc(b.BinC(ir.LShr, val, 8), 32)
	b.MetaStore(packet.MetaGateway, gw)
	b.MetaStore(packet.MetaPort, port)
	for p := 0; p <= maxPort; p++ {
		b.If(b.BinC(ir.Eq, port, uint64(p)), func() { b.Emit(p) }, nil)
	}
	b.Drop() // no-route sentinel
	return b.Build()
}
