package elements

import (
	"fmt"
	"strconv"
	"strings"

	"vsd/internal/packet"
)

// splitArgs splits a Click configuration string on commas, trimming
// whitespace; empty input yields nil.
func splitArgs(cfg string) []string {
	cfg = strings.TrimSpace(cfg)
	if cfg == "" {
		return nil
	}
	parts := strings.Split(cfg, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

// parseUint parses a decimal unsigned integer with a range check.
func parseUint(s string, max uint64) (uint64, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if v > max {
		return 0, fmt.Errorf("number %d exceeds %d", v, max)
	}
	return v, nil
}

// parseIP4 parses dotted-quad notation.
func parseIP4(s string) (uint32, error) {
	parts := strings.Split(strings.TrimSpace(s), ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	var ip uint32
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("bad IPv4 address %q", s)
		}
		ip = ip<<8 | uint32(v)
	}
	return ip, nil
}

// cidr is a parsed prefix.
type cidr struct {
	Addr uint32
	Bits int
}

// parseCIDR parses "a.b.c.d/len" (or a bare address as /32).
func parseCIDR(s string) (cidr, error) {
	s = strings.TrimSpace(s)
	addrPart, lenPart, found := strings.Cut(s, "/")
	addr, err := parseIP4(addrPart)
	if err != nil {
		return cidr{}, err
	}
	bits := 32
	if found {
		v, err := strconv.Atoi(lenPart)
		if err != nil || v < 0 || v > 32 {
			return cidr{}, fmt.Errorf("bad prefix length in %q", s)
		}
		bits = v
	}
	// Normalize: zero the host bits.
	if bits < 32 {
		addr &= ^uint32(0) << (32 - bits)
	}
	return cidr{Addr: addr, Bits: bits}, nil
}

// Range returns the [lo, hi] address interval the prefix covers.
func (c cidr) Range() (lo, hi uint32) {
	lo = c.Addr
	hi = c.Addr | (^uint32(0) >> c.Bits)
	if c.Bits == 0 {
		hi = ^uint32(0)
	}
	return lo, hi
}

func (c cidr) String() string {
	return fmt.Sprintf("%s/%d", packet.FormatIP4(c.Addr), c.Bits)
}

// parseMAC parses "aa:bb:cc:dd:ee:ff".
func parseMAC(s string) ([6]byte, error) {
	var mac [6]byte
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) != 6 {
		return mac, fmt.Errorf("bad MAC address %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return mac, fmt.Errorf("bad MAC address %q", s)
		}
		mac[i] = byte(v)
	}
	return mac, nil
}

// fields splits on any whitespace.
func fields(s string) []string { return strings.Fields(s) }
