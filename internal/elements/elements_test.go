package elements

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vsd/internal/bv"
	"vsd/internal/ir"
	"vsd/internal/packet"
)

// exec runs a single element over a packet with the given header offset.
func exec(t *testing.T, prog *ir.Program, data []byte, hoff uint32) (ir.Outcome, *ir.ExecEnv) {
	t.Helper()
	env := &ir.ExecEnv{
		Pkt:   append([]byte{}, data...),
		Meta:  map[string]bv.V{packet.MetaHeaderOffset: bv.New(32, uint64(hoff))},
		State: ir.NewState(),
	}
	return ir.Exec(prog, env), env
}

func mustBuild(t *testing.T, ctor func(string) (*ir.Program, error), cfg string) *ir.Program {
	t.Helper()
	p, err := ctor(cfg)
	if err != nil {
		t.Fatalf("constructor failed: %v", err)
	}
	return p
}

func validIPv4(t *testing.T, ttl uint8, dst uint32, opts []byte) *packet.Buffer {
	t.Helper()
	buf, err := packet.BuildIPv4(packet.IPv4Spec{
		SrcIP: packet.IP4(10, 0, 0, 1), DstIP: dst,
		TTL: ttl, Protocol: packet.ProtoUDP,
		Options: opts,
		Payload: []byte{0x04, 0xd2, 0x00, 0x35, 0, 8, 0, 0}, // UDP 1234 -> 53
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestStripAdjustsHeaderOffset(t *testing.T) {
	p := mustBuild(t, Strip, "14")
	out, env := exec(t, p, make([]byte, 64), 0)
	if out.Disposition != ir.Emitted {
		t.Fatalf("outcome %+v", out)
	}
	if env.Meta[packet.MetaHeaderOffset].U != 14 {
		t.Errorf("hoff = %d, want 14", env.Meta[packet.MetaHeaderOffset].U)
	}
}

func TestEtherEncapWritesHeader(t *testing.T) {
	p := mustBuild(t, EtherEncap, "0800, 00:01:02:03:04:05, 0a:0b:0c:0d:0e:0f")
	data := make([]byte, 64)
	out, env := exec(t, p, data, 14) // room for the header
	if out.Disposition != ir.Emitted {
		t.Fatalf("outcome %+v", out)
	}
	if env.Meta[packet.MetaHeaderOffset].U != 0 {
		t.Errorf("hoff = %d, want 0", env.Meta[packet.MetaHeaderOffset].U)
	}
	eth, err := packet.EthernetAt(env.Pkt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eth.Type() != packet.EtherTypeIPv4 {
		t.Errorf("ethertype = %#x", eth.Type())
	}
	if eth.Dst()[0] != 0x0a || eth.Src()[5] != 0x05 {
		t.Errorf("MACs wrong: dst % x src % x", eth.Dst(), eth.Src())
	}
	// Without room, the wrapped offset faults — the suspect behaviour
	// the verifier must reason about.
	out, _ = exec(t, p, data, 0)
	if out.Disposition != ir.Crashed || out.Crash.Kind != ir.CrashOOB {
		t.Fatalf("encap at hoff 0: %+v, want OOB crash", out)
	}
}

func TestCheckIPHeaderAcceptsValid(t *testing.T) {
	p := mustBuild(t, CheckIPHeader, "")
	buf := validIPv4(t, 64, packet.IP4(192, 168, 0, 9), nil)
	out, _ := exec(t, p, buf.Data, packet.EthernetHeaderLen)
	if out.Disposition != ir.Emitted || out.Port != 0 {
		t.Fatalf("valid packet: %+v, want emit 0", out)
	}
}

func TestCheckIPHeaderRejectsBad(t *testing.T) {
	p := mustBuild(t, CheckIPHeader, "")
	valid := validIPv4(t, 64, packet.IP4(192, 168, 0, 9), nil)

	cases := []struct {
		name   string
		mutate func(d []byte) []byte
	}{
		{"short packet", func(d []byte) []byte { return d[:20] }},
		{"bad version", func(d []byte) []byte { d[14] = 0x65; return d }},
		{"ihl too small", func(d []byte) []byte { d[14] = 0x44; return d }},
		{"ihl beyond packet", func(d []byte) []byte { d[14] = 0x4f; return d }},
		{"bad checksum", func(d []byte) []byte { d[14+10] ^= 0xff; return d }},
		{"total length too large", func(d []byte) []byte { d[14+2] = 0x7f; return d }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := c.mutate(append([]byte{}, valid.Data...))
			out, _ := exec(t, p, data, packet.EthernetHeaderLen)
			if out.Disposition != ir.Emitted || out.Port != 1 {
				t.Fatalf("%s: %+v, want emit 1", c.name, out)
			}
		})
	}
}

func TestCheckIPHeaderNoChecksumOption(t *testing.T) {
	p := mustBuild(t, CheckIPHeader, "NOCHECKSUM")
	buf := validIPv4(t, 64, packet.IP4(1, 2, 3, 4), nil)
	buf.Data[14+10] ^= 0xff // corrupt checksum
	out, _ := exec(t, p, buf.Data, packet.EthernetHeaderLen)
	if out.Port != 0 {
		t.Fatalf("NOCHECKSUM should accept corrupted checksum: %+v", out)
	}
	if _, err := CheckIPHeader("BOGUS"); err == nil {
		t.Error("bogus option accepted")
	}
}

func TestCheckIPHeaderNeverCrashesConcretely(t *testing.T) {
	// Fuzz: arbitrary bytes and offsets must classify, never fault.
	p := mustBuild(t, CheckIPHeader, "")
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(80)
		data := make([]byte, n)
		r.Read(data)
		out, _ := exec(t, p, data, uint32(r.Intn(20)))
		if out.Disposition == ir.Crashed {
			t.Fatalf("CheckIPHeader crashed on % x: %v", data, out.Crash)
		}
	}
}

func TestDecIPTTLDecrementsAndPreservesChecksum(t *testing.T) {
	p := mustBuild(t, DecIPTTL, "")
	f := func(ttl uint8, a, b2, c, d byte) bool {
		if ttl <= 1 {
			ttl += 2
		}
		buf := validIPv4(t, ttl, packet.IP4(a, b2, c, d), nil)
		out, env := exec(t, p, buf.Data, packet.EthernetHeaderLen)
		if out.Disposition != ir.Emitted || out.Port != 0 {
			return false
		}
		ip, err := packet.IPv4At(env.Pkt, packet.EthernetHeaderLen)
		if err != nil {
			return false
		}
		if ip.TTL() != ttl-1 {
			return false
		}
		want, err := ip.ComputeChecksum()
		return err == nil && ip.Checksum() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecIPTTLExpires(t *testing.T) {
	p := mustBuild(t, DecIPTTL, "")
	for _, ttl := range []uint8{0, 1} {
		buf := validIPv4(t, ttl, packet.IP4(1, 1, 1, 1), nil)
		out, _ := exec(t, p, buf.Data, packet.EthernetHeaderLen)
		if out.Disposition != ir.Emitted || out.Port != 1 {
			t.Fatalf("ttl %d: %+v, want emit 1", ttl, out)
		}
	}
}

func TestIPOptionsWalk(t *testing.T) {
	p := mustBuild(t, IPOptions, "")
	cases := []struct {
		name string
		opts []byte
		port int
	}{
		{"no options", nil, 0},
		{"nops and eol", []byte{1, 1, 1, 0}, 0},
		{"valid tlv", []byte{7, 4, 0, 0}, 0}, // record-route-ish TLV filling 4 bytes
		{"tlv then eol", []byte{0x44, 2, 1, 0}, 0},
		{"length zero", []byte{7, 0, 0, 0}, 1},
		{"length one", []byte{7, 1, 0, 0}, 1},
		{"length overruns", []byte{7, 9, 0, 0}, 1},
		{"truncated tlv", []byte{1, 1, 1, 7}, 1}, // type at last byte, no length
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			buf := validIPv4(t, 9, packet.IP4(1, 2, 3, 4), c.opts)
			out, _ := exec(t, p, buf.Data, packet.EthernetHeaderLen)
			if out.Disposition != ir.Emitted || out.Port != c.port {
				t.Fatalf("%s: %+v, want emit %d", c.name, out, c.port)
			}
		})
	}
}

func TestLookupIPRouteMatchesReferenceLPM(t *testing.T) {
	cfg := "10.0.0.0/8 0, 10.1.0.0/16 1, 10.1.2.0/24 2, 192.168.0.0/16 10.9.9.9 1, 0.0.0.0/0 3"
	p := mustBuild(t, LookupIPRoute, cfg)
	routes, _, err := parseRoutes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b2, c, d byte) bool {
		addr := packet.IP4(a, b2, c, d)
		buf := validIPv4(t, 64, addr, nil)
		out, env := exec(t, p, buf.Data, packet.EthernetHeaderLen)
		want, okRoute := lpmRoute(routes, addr)
		if !okRoute {
			return out.Disposition == ir.Dropped
		}
		if out.Disposition != ir.Emitted || out.Port != want.port {
			return false
		}
		return env.Meta[packet.MetaGateway].U == uint64(want.gw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
	// Directed probes for each prefix level.
	probes := []struct {
		addr uint32
		port int
	}{
		{packet.IP4(10, 200, 0, 1), 0},
		{packet.IP4(10, 1, 9, 1), 1},
		{packet.IP4(10, 1, 2, 200), 2},
		{packet.IP4(192, 168, 77, 1), 1},
		{packet.IP4(8, 8, 8, 8), 3},
	}
	for _, pr := range probes {
		buf := validIPv4(t, 64, pr.addr, nil)
		out, _ := exec(t, p, buf.Data, packet.EthernetHeaderLen)
		if out.Port != pr.port {
			t.Errorf("route %s: port %d, want %d", packet.FormatIP4(pr.addr), out.Port, pr.port)
		}
	}
}

func TestCompileLPMProducesValidTable(t *testing.T) {
	routes, _, err := parseRoutes("10.0.0.0/8 0, 10.1.0.0/16 1, 0.0.0.0/0 2")
	if err != nil {
		t.Fatal(err)
	}
	entries := compileLPM(routes)
	table := &ir.StaticTable{Name: "t", KeyW: 32, ValW: 64, Entries: entries, Default: noRouteSentinel}
	if err := table.Validate(); err != nil {
		t.Fatalf("compiled table invalid: %v", err)
	}
	// With a default route the table must cover the whole address space.
	if entries[0].Lo != 0 || entries[len(entries)-1].Hi != uint64(^uint32(0)) {
		t.Errorf("table does not span the address space: %+v", entries)
	}
}

func TestClassifierDispatch(t *testing.T) {
	// The Click IP-router front end: IP to 0, ARP to 1, rest to 2.
	p := mustBuild(t, Classifier, "12/0800, 12/0806, -")
	mk := func(etype uint16) []byte {
		d := make([]byte, 20)
		d[12] = byte(etype >> 8)
		d[13] = byte(etype)
		return d
	}
	cases := []struct {
		etype uint16
		port  int
	}{
		{packet.EtherTypeIPv4, 0},
		{packet.EtherTypeARP, 1},
		{packet.EtherTypeVLAN, 2},
	}
	for _, c := range cases {
		out, _ := exec(t, p, mk(c.etype), 0)
		if out.Disposition != ir.Emitted || out.Port != c.port {
			t.Errorf("etype %#x: %+v, want emit %d", c.etype, out, c.port)
		}
	}
	// Too-short packet falls to the catch-all rather than faulting.
	out, _ := exec(t, p, make([]byte, 8), 0)
	if out.Disposition != ir.Emitted || out.Port != 2 {
		t.Errorf("short packet: %+v, want catch-all", out)
	}
}

func TestClassifierWithMaskAndMultipleTests(t *testing.T) {
	// ARP request vs reply: opcode halfword at offset 20.
	p := mustBuild(t, Classifier, "12/0806 20/0001, 12/0806 20/0002, -")
	mk := func(op byte) []byte {
		d := make([]byte, 22)
		d[12], d[13] = 0x08, 0x06
		d[21] = op
		return d
	}
	if out, _ := exec(t, p, mk(1), 0); out.Port != 0 {
		t.Errorf("ARP request: port %d", out.Port)
	}
	if out, _ := exec(t, p, mk(2), 0); out.Port != 1 {
		t.Errorf("ARP reply: port %d", out.Port)
	}
	// Masked test: high nibble only.
	pm := mustBuild(t, Classifier, "0/40%f0, -")
	if out, _ := exec(t, pm, []byte{0x45, 0, 0, 0}, 0); out.Port != 0 {
		t.Errorf("masked match: port %d", out.Port)
	}
	if out, _ := exec(t, pm, []byte{0x61, 0, 0, 0}, 0); out.Port != 1 {
		t.Errorf("masked mismatch: port %d", out.Port)
	}
}

func TestClassifierNoCatchAllDrops(t *testing.T) {
	p := mustBuild(t, Classifier, "12/0800")
	out, _ := exec(t, p, make([]byte, 20), 0)
	if out.Disposition != ir.Dropped {
		t.Errorf("unmatched packet: %+v, want drop", out)
	}
}

func TestIPFilterSemantics(t *testing.T) {
	p := mustBuild(t, IPFilter, "allow proto udp dport 53, deny src 10.0.0.0/8, allow proto tcp")
	mk := func(proto uint8, src uint32, dport uint16) []byte {
		buf, err := packet.BuildIPv4(packet.IPv4Spec{
			SrcIP: src, DstIP: packet.IP4(1, 1, 1, 1), TTL: 9, Protocol: proto,
			Payload: []byte{0x00, 0x07, byte(dport >> 8), byte(dport), 0, 8, 0, 0},
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Data
	}
	cases := []struct {
		name  string
		data  []byte
		allow bool
	}{
		{"dns allowed", mk(packet.ProtoUDP, packet.IP4(10, 1, 1, 1), 53), true},
		{"udp non-dns from 10/8 denied", mk(packet.ProtoUDP, packet.IP4(10, 1, 1, 1), 80), false},
		{"tcp outside 10/8 allowed", mk(packet.ProtoTCP, packet.IP4(11, 1, 1, 1), 80), true},
		{"icmp unmatched default-denied", mk(packet.ProtoICMP, packet.IP4(11, 1, 1, 1), 0), false},
	}
	for _, c := range cases {
		out, _ := exec(t, p, c.data, packet.EthernetHeaderLen)
		got := out.Disposition == ir.Emitted
		if got != c.allow {
			t.Errorf("%s: %+v, want allow=%v", c.name, out, c.allow)
		}
	}
}

func TestCounterVariants(t *testing.T) {
	unsafe := mustBuild(t, Counter, "")
	env := &ir.ExecEnv{Pkt: make([]byte, 20), Meta: map[string]bv.V{}, State: ir.NewState()}
	for i := 0; i < 3; i++ {
		if out := ir.Exec(unsafe, env); out.Disposition != ir.Emitted {
			t.Fatalf("count %d: %+v", i, out)
		}
	}
	if got := env.State.Read(unsafe.States[0], 0); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	// Force the overflow the verifier warns about.
	env.State["count"] = map[uint64]uint64{0: 0xffffffff}
	if out := ir.Exec(unsafe, env); out.Disposition != ir.Crashed {
		t.Fatalf("unsafe counter at max: %+v, want crash", out)
	}
	// The saturating variant survives the same state.
	safe := mustBuild(t, Counter, "SATURATE")
	env2 := &ir.ExecEnv{Pkt: make([]byte, 20), Meta: map[string]bv.V{},
		State: ir.State{"count": map[uint64]uint64{0: 0xffffffff}}}
	if out := ir.Exec(safe, env2); out.Disposition != ir.Emitted {
		t.Fatalf("saturating counter at max: %+v", out)
	}
	if got := env2.State.Read(safe.States[0], 0); got != 0xffffffff {
		t.Errorf("saturating counter moved past max: %d", got)
	}
}

func TestNetFlowCountsPerFlow(t *testing.T) {
	p := mustBuild(t, NetFlow, "16")
	env := &ir.ExecEnv{Meta: map[string]bv.V{packet.MetaHeaderOffset: bv.New(32, 14)}, State: ir.NewState()}
	flowA := validIPv4(t, 9, packet.IP4(2, 2, 2, 2), nil)
	flowB := validIPv4(t, 9, packet.IP4(3, 3, 3, 3), nil)
	for i := 0; i < 3; i++ {
		env.Pkt = append([]byte{}, flowA.Data...)
		ir.Exec(p, env)
	}
	env.Pkt = append([]byte{}, flowB.Data...)
	ir.Exec(p, env)
	if n := len(env.State["flows"]); n != 2 {
		t.Fatalf("flow table has %d entries, want 2", n)
	}
	var counts []uint64
	for _, v := range env.State["flows"] {
		counts = append(counts, v)
	}
	if !(counts[0] == 3 && counts[1] == 1 || counts[0] == 1 && counts[1] == 3) {
		t.Errorf("flow counts = %v, want {3,1}", counts)
	}
}

func TestIPRewriterRewritesAndChecksums(t *testing.T) {
	p := mustBuild(t, IPRewriter, "SNAT 100.64.0.1")
	f := func(a, b2, c, d byte) bool {
		buf := validIPv4(t, 20, packet.IP4(9, 9, 9, 9), nil)
		ip, _ := packet.IPv4At(buf.Data, packet.EthernetHeaderLen)
		ip.SetSrc(packet.IP4(a, b2, c, d))
		ck, _ := ip.ComputeChecksum()
		ip.SetChecksum(ck)
		out, env := exec(t, p, buf.Data, packet.EthernetHeaderLen)
		if out.Disposition != ir.Emitted {
			return false
		}
		got, err := packet.IPv4At(env.Pkt, packet.EthernetHeaderLen)
		if err != nil || got.Src() != packet.IP4(100, 64, 0, 1) {
			return false
		}
		want, err := got.ComputeChecksum()
		return err == nil && got.Checksum() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestToyElementsMatchPaperFig2(t *testing.T) {
	e1 := mustBuild(t, ToyE1, "")
	e2 := mustBuild(t, ToyE2, "")
	// E2 alone crashes on a negative first byte (segment e3)...
	out, _ := exec(t, e2, []byte{0x80, 0}, 0)
	if out.Disposition != ir.Crashed {
		t.Fatalf("E2 alone on negative input: %+v, want crash", out)
	}
	// ...but E1 clamps negatives, so E1;E2 never crashes.
	f := func(b0, b1 byte) bool {
		env := &ir.ExecEnv{Pkt: []byte{b0, b1}, Meta: map[string]bv.V{}, State: ir.NewState()}
		if out := ir.Exec(e1, env); out.Disposition != ir.Emitted {
			return false
		}
		out := ir.Exec(e2, env)
		return out.Disposition == ir.Emitted
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnsafeAndFixedReader(t *testing.T) {
	unsafe := mustBuild(t, UnsafeReader, "16")
	fixed := mustBuild(t, FixedReader, "16")
	short := make([]byte, 10)
	if out, _ := exec(t, unsafe, short, 0); out.Disposition != ir.Crashed {
		t.Errorf("UnsafeReader on short packet: %+v, want crash", out)
	}
	if out, _ := exec(t, fixed, short, 0); out.Disposition != ir.Emitted {
		t.Errorf("FixedReader on short packet: %+v, want emit", out)
	}
	long := make([]byte, 64)
	if out, _ := exec(t, unsafe, long, 0); out.Disposition != ir.Emitted {
		t.Errorf("UnsafeReader on long packet: %+v", out)
	}
}

func TestConfigParsers(t *testing.T) {
	if _, err := parseIP4("10.0.0"); err == nil {
		t.Error("bad IP accepted")
	}
	if _, err := parseCIDR("10.0.0.0/33"); err == nil {
		t.Error("bad prefix length accepted")
	}
	c, err := parseCIDR("10.0.0.55/8")
	if err != nil {
		t.Fatal(err)
	}
	if c.Addr != packet.IP4(10, 0, 0, 0) {
		t.Errorf("host bits not normalized: %s", c)
	}
	if _, err := parseMAC("aa:bb:cc"); err == nil {
		t.Error("bad MAC accepted")
	}
	if _, err := parseClassifier("12:0800"); err == nil {
		t.Error("bad classifier test accepted")
	}
	if _, err := parseClassifier("12/08%f"); err == nil {
		t.Error("odd-length mask accepted")
	}
	if _, err := parseFilterRules("permit all"); err == nil {
		t.Error("bad filter action accepted")
	}
	if _, _, err := parseRoutes("10.0.0.0/8"); err == nil {
		t.Error("route without port accepted")
	}
}

func TestRegistryHasAllClasses(t *testing.T) {
	r := Default()
	want := []string{"Classifier", "CheckIPHeader", "DecIPTTL", "IPOptions",
		"LookupIPRoute", "Strip", "EtherEncap", "Counter", "NetFlow",
		"IPRewriter", "IPFilter", "ToyE1", "ToyE2", "InfiniteSource", "Discard",
		"TokenBucket", "LeakyNAT"}
	have := map[string]bool{}
	for _, c := range r.Classes() {
		have[c] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("registry missing %s", w)
		}
	}
	// Constructors run through the registry.
	if _, err := r.Make("s", "Strip", "14"); err != nil {
		t.Errorf("Make Strip: %v", err)
	}
	if _, err := r.Make("x", "NoSuch", ""); err == nil {
		t.Error("unknown class accepted")
	}
}

// ---- concrete execution of the stateful elements ----
//
// The stateful elements were originally only covered symbolically (the
// A3/S1 experiments); these tests drive the same IR through the
// concrete interpreter, including the state boundaries the verifier
// reasons about.

// statefulEnv is exec() with a caller-controlled persistent state, for
// driving multiple packets through one element instance.
func statefulEnv(data []byte, hoff uint32, st ir.State) *ir.ExecEnv {
	return &ir.ExecEnv{
		Pkt:   append([]byte{}, data...),
		Meta:  map[string]bv.V{packet.MetaHeaderOffset: bv.New(32, uint64(hoff))},
		State: st,
	}
}

func TestCounterSaturatesAtBoundary(t *testing.T) {
	p := mustBuild(t, Counter, "SATURATE")
	d, _ := p.StateDeclByName("count")
	st := ir.NewState()
	// One below the boundary: increments to the maximum.
	st.Write(d, 0, 0xfffffffe)
	if out := ir.Exec(p, statefulEnv(make([]byte, 14), 0, st)); out.Disposition != ir.Emitted {
		t.Fatalf("below boundary: %+v", out)
	}
	if got := st.Read(d, 0); got != 0xffffffff {
		t.Fatalf("count = %#x, want 0xffffffff", got)
	}
	// At the boundary: saturates, does not wrap, does not crash.
	if out := ir.Exec(p, statefulEnv(make([]byte, 14), 0, st)); out.Disposition != ir.Emitted {
		t.Fatalf("at boundary: %+v", out)
	}
	if got := st.Read(d, 0); got != 0xffffffff {
		t.Fatalf("count after saturation = %#x, want 0xffffffff", got)
	}
}

func TestCounterOverflowAssertsAtBoundary(t *testing.T) {
	p := mustBuild(t, Counter, "")
	d, _ := p.StateDeclByName("count")
	st := ir.NewState()
	st.Write(d, 0, 0xfffffffe)
	if out := ir.Exec(p, statefulEnv(make([]byte, 14), 0, st)); out.Disposition != ir.Emitted {
		t.Fatalf("one below the overflow must still pass: %+v", out)
	}
	out := ir.Exec(p, statefulEnv(make([]byte, 14), 0, st))
	if out.Disposition != ir.Crashed || out.Crash.Kind != ir.CrashAssert {
		t.Fatalf("at the boundary: %+v, want assertion crash", out)
	}
}

func TestNetFlowZeroPayloadDatagram(t *testing.T) {
	p := mustBuild(t, NetFlow, "")
	// A minimal valid IPv4 datagram with no transport header at all: the
	// guarded port read must be skipped, not fault.
	buf, err := packet.BuildIPv4(packet.IPv4Spec{
		SrcIP: packet.IP4(10, 0, 0, 1), DstIP: packet.IP4(10, 0, 0, 2),
		TTL: 64, Protocol: packet.ProtoUDP,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := ir.NewState()
	out := ir.Exec(p, statefulEnv(buf.Data, 14, st))
	if out.Disposition != ir.Emitted {
		t.Fatalf("zero-payload datagram: %+v, want emitted", out)
	}
	// The flow was still counted, under the ports=0 key.
	d, _ := p.StateDeclByName("flows")
	key := uint64(packet.IP4(10, 0, 0, 1) ^ packet.IP4(10, 0, 0, 2) ^ uint32(packet.ProtoUDP))
	if got := st.Read(d, key); got != 1 {
		t.Fatalf("flow count = %d, want 1 (key %#x)", got, key)
	}
}

func TestTokenBucketConcreteBurst(t *testing.T) {
	p := mustBuild(t, TokenBucket, "2")
	st := ir.NewState()
	wantPorts := []int{0, 0, 1, 1}
	for i, want := range wantPorts {
		out := ir.Exec(p, statefulEnv(make([]byte, 14), 0, st))
		if out.Disposition != ir.Emitted || out.Port != want {
			t.Fatalf("packet %d: %+v, want emit on port %d", i, out, want)
		}
	}
}

func TestLeakyNATEvictsAndReassigns(t *testing.T) {
	p := mustBuild(t, LeakyNAT, "100.64.0.0")
	flowA := packet.IP4(10, 0, 0, 1)
	flowB := packet.IP4(10, 9, 9, 9)
	mk := func(src uint32) []byte {
		buf, err := packet.BuildIPv4(packet.IPv4Spec{
			SrcIP: src, DstIP: packet.IP4(192, 168, 0, 1),
			TTL: 64, Protocol: packet.ProtoUDP,
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Data
	}
	st := ir.NewState()
	run := func(src uint32) uint32 {
		env := statefulEnv(mk(src), 14, st)
		out := ir.Exec(p, env)
		if out.Disposition != ir.Emitted {
			t.Fatalf("src %#x: %+v", src, out)
		}
		return packet.IP4(env.Pkt[26], env.Pkt[27], env.Pkt[28], env.Pkt[29])
	}
	a1 := run(flowA)
	b1 := run(flowB)
	a2 := run(flowA)
	if a1 == a2 {
		t.Fatalf("flow A mapping stable (%#x) despite eviction — the designed bug is gone", a1)
	}
	if b1 == a1 || b1 == a2 {
		t.Fatalf("distinct translations expected, got a1=%#x b1=%#x a2=%#x", a1, b1, a2)
	}
	// Without interleaving traffic the mapping IS stable (the bug needs
	// three packets).
	st2 := ir.NewState()
	stP := func(src uint32) uint32 {
		env := statefulEnv(mk(src), 14, st2)
		ir.Exec(p, env)
		return packet.IP4(env.Pkt[26], env.Pkt[27], env.Pkt[28], env.Pkt[29])
	}
	if x, y := stP(flowA), stP(flowA); x != y {
		t.Fatalf("back-to-back same-flow packets translated differently: %#x vs %#x", x, y)
	}
}
