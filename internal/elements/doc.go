// Package elements implements the element library: the default Click
// IP-router elements the paper's evaluation verifies (Classifier,
// Strip/EtherEncap, CheckIPHeader, LookupIPRoute, DecIPTTL, IPOptions),
// the stateful elements its discussion motivates (Counter, NetFlow, a
// NAT rewriter), and supporting elements (Paint, CheckLength, sources
// and sinks, the toy elements of the paper's Fig. 1 and 2, and the
// deliberately broken BuggyDecIPTTL used to demonstrate functional-spec
// witnesses).
//
// Every element is written once in the element IR (internal/ir) and is
// therefore both executable (internal/dataplane) and verifiable
// (internal/symbex, internal/verify). Element configurations follow
// Click's flavor: "Strip(14)", "Classifier(12/0800, 12/0806, -)",
// "LookupIPRoute(10.0.0.0/8 0, 0.0.0.0/0 1)".
//
// Beyond the IR, elements expose their transform semantics as symbolic
// expressions (specs.go: FilterAllowExpr, SNATNewSrc,
// ChecksumPatchExpr) — declarative restatements of what a configuration
// means, precise enough for the functional-spec layer (internal/specs,
// DESIGN.md §6) to prove the IR and the declared behavior agree on
// every feasible pipeline path.
package elements
