package elements

import (
	"fmt"

	"vsd/internal/ir"
	"vsd/internal/packet"
)

// Counter counts packets in private state. Two variants, selected by
// configuration:
//
//	Counter()          // the paper's cautionary tale: asserts the
//	                   // 32-bit count never overflows — the verifier's
//	                   // data-structure analysis finds the overflow
//	                   // reachable and reports it
//	Counter(SATURATE)  // saturates instead; provably crash-free
//
// The count lives in a single-slot key/value store so it goes through
// the paper's data-structure model (unconstrained reads, write logs).
func Counter(cfg string) (*ir.Program, error) {
	saturate := false
	switch cfg {
	case "":
	case "SATURATE":
		saturate = true
	default:
		return nil, fmt.Errorf("Counter: unknown option %q", cfg)
	}
	b := ir.NewBuilder("Counter", 1, 1)
	b.DeclareState(ir.StateDecl{Name: "count", KeyW: 8, ValW: 32})
	key := b.ConstU(8, 0)
	n := b.StateRead("count", key)
	if saturate {
		max := b.ConstU(32, 0xffffffff)
		isMax := b.Bin(ir.Eq, n, max)
		next := b.Select(isMax, max, b.BinC(ir.Add, n, 1))
		b.StateWrite("count", key, next)
	} else {
		b.Assert(b.BinC(ir.Ult, n, 0xffffffff), "packet counter overflow")
		b.StateWrite("count", key, b.BinC(ir.Add, n, 1))
	}
	b.Emit(0)
	return b.Build()
}

// NetFlow maintains per-flow packet counts keyed by a 5-tuple hash, the
// paper's example of a stateful element ("a flow table in a NetFlow
// element"). Configuration: NetFlow(CAPACITY) bounds the flow table
// (default 1024). Counts saturate, so the element is crash-free.
func NetFlow(cfg string) (*ir.Program, error) {
	capacity := uint64(1024)
	if cfg != "" {
		var err error
		capacity, err = parseUint(cfg, 1<<20)
		if err != nil {
			return nil, err
		}
	}
	b := ir.NewBuilder("NetFlow", 1, 1)
	b.DeclareState(ir.StateDecl{Name: "flows", KeyW: 32, ValW: 32, Capacity: int(capacity)})
	hoff := b.MetaLoad(packet.MetaHeaderOffset, 32)
	// Flow key: src ^ dst ^ (sport:dport) ^ proto. The ports sit right
	// after the IP header; a validated header upstream guarantees the
	// header itself, but not that a transport header follows (a
	// zero-payload datagram is valid IP), so the port read is guarded —
	// an earlier unguarded version of this element was rejected by the
	// verifier with exactly that witness.
	b0 := b.LoadPkt(hoff, 1)
	ihl := b.ZExt(b.BinC(ir.And, b0, 0x0f), 32)
	l4 := b.Bin(ir.Add, hoff, b.BinC(ir.Mul, ihl, 4))
	src := b.LoadPkt(b.BinC(ir.Add, hoff, 12), 4)
	dst := b.LoadPkt(b.BinC(ir.Add, hoff, 16), 4)
	ports := b.Mov(b.ConstU(32, 0))
	plen := b.PktLen()
	hasL4 := b.Bin(ir.Ule, b.BinC(ir.Add, l4, 4), plen)
	b.If(hasL4, func() {
		b.SetReg(ports, b.LoadPkt(l4, 4))
	}, nil)
	proto := b.ZExt(b.LoadPkt(b.BinC(ir.Add, hoff, 9), 1), 32)
	key := b.Bin(ir.Xor, b.Bin(ir.Xor, src, dst), b.Bin(ir.Xor, ports, proto))
	n := b.StateRead("flows", key)
	max := b.ConstU(32, 0xffffffff)
	isMax := b.Bin(ir.Eq, n, max)
	b.StateWrite("flows", key, b.Select(isMax, max, b.BinC(ir.Add, n, 1)))
	b.Emit(0)
	return b.Build()
}

// IPRewriter(SNAT NEWSRC) is a simplified source-NAT: it rewrites the
// IPv4 source address to NEWSRC, remembers the original address in its
// mapping table (keyed by the flow hash, as a real NAT's connection
// table would be), and incrementally updates the header checksum. The
// paper names NAT maps as the second canonical mutable data structure.
func IPRewriter(cfg string) (*ir.Program, error) {
	f := fields(cfg)
	if len(f) != 2 || f[0] != "SNAT" {
		return nil, fmt.Errorf("IPRewriter wants: SNAT NEWSRC")
	}
	newSrc, err := parseIP4(f[1])
	if err != nil {
		return nil, err
	}
	b := ir.NewBuilder("IPRewriter", 1, 1)
	b.DeclareState(ir.StateDecl{Name: "natmap", KeyW: 32, ValW: 32, Capacity: 4096})
	hoff := b.MetaLoad(packet.MetaHeaderOffset, 32)
	srcOff := b.BinC(ir.Add, hoff, 12)
	oldSrc := b.LoadPkt(srcOff, 4)
	// Remember the original source for the (not modeled) reverse path.
	b.StateWrite("natmap", oldSrc, oldSrc)
	// Rewrite and patch the checksum one halfword at a time (RFC 1624).
	ck := b.Mov(b.LoadPkt(b.BinC(ir.Add, hoff, 10), 2))
	patch := func(off ir.Reg, newVal uint64) {
		old := b.LoadPkt(off, 2)
		nv := b.ConstU(16, newVal)
		t := b.Bin(ir.Add, b.ZExt(b.Not(ck), 32), b.ZExt(b.Not(old), 32))
		t = b.Bin(ir.Add, t, b.ZExt(nv, 32))
		t = b.Bin(ir.Add, b.BinC(ir.And, t, 0xffff), b.BinC(ir.LShr, t, 16))
		t = b.Bin(ir.Add, b.BinC(ir.And, t, 0xffff), b.BinC(ir.LShr, t, 16))
		b.SetReg(ck, b.Not(b.Trunc(t, 16)))
		b.StorePkt(off, nv, 2)
	}
	patch(srcOff, uint64(newSrc>>16))
	patch(b.BinC(ir.Add, hoff, 14), uint64(newSrc&0xffff))
	b.StorePkt(b.BinC(ir.Add, hoff, 10), ck, 2)
	_ = oldSrc
	b.Emit(0)
	return b.Build()
}
