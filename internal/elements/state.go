package elements

import (
	"fmt"

	"vsd/internal/ir"
	"vsd/internal/packet"
)

// Counter counts packets in private state. Two variants, selected by
// configuration:
//
//	Counter()          // the paper's cautionary tale: asserts the
//	                   // 32-bit count never overflows — the verifier's
//	                   // data-structure analysis finds the overflow
//	                   // reachable and reports it
//	Counter(SATURATE)  // saturates instead; provably crash-free
//
// The count lives in a single-slot key/value store so it goes through
// the paper's data-structure model (unconstrained reads, write logs).
func Counter(cfg string) (*ir.Program, error) {
	saturate := false
	switch cfg {
	case "":
	case "SATURATE":
		saturate = true
	default:
		return nil, fmt.Errorf("Counter: unknown option %q", cfg)
	}
	b := ir.NewBuilder("Counter", 1, 1)
	b.DeclareState(ir.StateDecl{Name: "count", KeyW: 8, ValW: 32})
	key := b.ConstU(8, 0)
	n := b.StateRead("count", key)
	if saturate {
		max := b.ConstU(32, 0xffffffff)
		isMax := b.Bin(ir.Eq, n, max)
		next := b.Select(isMax, max, b.BinC(ir.Add, n, 1))
		b.StateWrite("count", key, next)
	} else {
		b.Assert(b.BinC(ir.Ult, n, 0xffffffff), "packet counter overflow")
		b.StateWrite("count", key, b.BinC(ir.Add, n, 1))
	}
	b.Emit(0)
	return b.Build()
}

// NetFlow maintains per-flow packet counts keyed by a 5-tuple hash, the
// paper's example of a stateful element ("a flow table in a NetFlow
// element"). Configuration: NetFlow(CAPACITY) bounds the flow table
// (default 1024). Counts saturate, so the element is crash-free.
func NetFlow(cfg string) (*ir.Program, error) {
	capacity := uint64(1024)
	if cfg != "" {
		var err error
		capacity, err = parseUint(cfg, 1<<20)
		if err != nil {
			return nil, err
		}
	}
	b := ir.NewBuilder("NetFlow", 1, 1)
	b.DeclareState(ir.StateDecl{Name: "flows", KeyW: 32, ValW: 32, Capacity: int(capacity)})
	hoff := b.MetaLoad(packet.MetaHeaderOffset, 32)
	// Flow key: src ^ dst ^ (sport:dport) ^ proto. The ports sit right
	// after the IP header; a validated header upstream guarantees the
	// header itself, but not that a transport header follows (a
	// zero-payload datagram is valid IP), so the port read is guarded —
	// an earlier unguarded version of this element was rejected by the
	// verifier with exactly that witness.
	b0 := b.LoadPkt(hoff, 1)
	ihl := b.ZExt(b.BinC(ir.And, b0, 0x0f), 32)
	l4 := b.Bin(ir.Add, hoff, b.BinC(ir.Mul, ihl, 4))
	src := b.LoadPkt(b.BinC(ir.Add, hoff, 12), 4)
	dst := b.LoadPkt(b.BinC(ir.Add, hoff, 16), 4)
	ports := b.Mov(b.ConstU(32, 0))
	plen := b.PktLen()
	hasL4 := b.Bin(ir.Ule, b.BinC(ir.Add, l4, 4), plen)
	b.If(hasL4, func() {
		b.SetReg(ports, b.LoadPkt(l4, 4))
	}, nil)
	proto := b.ZExt(b.LoadPkt(b.BinC(ir.Add, hoff, 9), 1), 32)
	key := b.Bin(ir.Xor, b.Bin(ir.Xor, src, dst), b.Bin(ir.Xor, ports, proto))
	n := b.StateRead("flows", key)
	max := b.ConstU(32, 0xffffffff)
	isMax := b.Bin(ir.Eq, n, max)
	b.StateWrite("flows", key, b.Select(isMax, max, b.BinC(ir.Add, n, 1)))
	b.Emit(0)
	return b.Build()
}

// TokenBucket(CAPACITY) is a packet-count rate limiter over private
// state: the bucket starts full (the store's declared default — which
// is why state defaults are bound into the induction key, DESIGN.md
// §8), each conforming packet spends one token and leaves through port
// 0, and packets arriving at an empty bucket leave through port 1
// (over-limit). No refill is modeled: the element bounds a burst, the
// property the RateLimiterBound sequence contract states — at most
// CAPACITY of any packet sequence may pass — and the k-induction proof
// of "tokens never exceed CAPACITY" makes unbounded.
// TokenBucketDefaultCapacity is the bucket size a config-less
// TokenBucket gets; spec builders (vsdverify -seqspec seqrate@elem)
// must assume the same default the element compiles with.
const TokenBucketDefaultCapacity = 4

func TokenBucket(cfg string) (*ir.Program, error) {
	capacity := uint64(TokenBucketDefaultCapacity)
	if cfg != "" {
		var err error
		capacity, err = parseUint(cfg, 1<<31)
		if err != nil {
			return nil, err
		}
	}
	b := ir.NewBuilder("TokenBucket", 1, 2)
	b.DeclareState(ir.StateDecl{Name: "tokens", KeyW: 8, ValW: 32, Default: capacity})
	key := b.ConstU(8, 0)
	tok := b.StateRead("tokens", key)
	has := b.Bin(ir.Ult, b.ConstU(32, 0), tok)
	b.If(has, func() {
		b.StateWrite("tokens", key, b.BinC(ir.Sub, tok, 1))
		b.Emit(0)
	}, func() {
		b.Emit(1)
	})
	return b.Build()
}

// LeakyNAT(NEWBASE) is a deliberately buggy address translator for the
// sequence-verification demonstration: it owns a single translation
// slot. The packet's source address is rewritten to NEWBASE plus a
// generation number; as long as the same flow (source address) keeps
// arriving, the generation — and thus the mapping — is stable, but a
// packet from any other flow evicts the slot and bumps the generation,
// so when the first flow returns it is assigned a *different* address.
//
// Every single packet is handled correctly (the element is crash-free
// and each output is a well-formed rewrite), and any two packets of one
// flow with no interleaving traffic translate consistently — the bug is
// only observable as a three-packet sequence A, B, A, which is exactly
// what the NATMappingStable sequence contract refutes it with
// (DESIGN.md §8). It assumes a validated IPv4 header upstream, like
// IPRewriter.
func LeakyNAT(cfg string) (*ir.Program, error) {
	base, err := parseIP4(cfg)
	if err != nil {
		return nil, err
	}
	b := ir.NewBuilder("LeakyNAT", 1, 1)
	b.DeclareState(ir.StateDecl{Name: "owner", KeyW: 8, ValW: 32})
	b.DeclareState(ir.StateDecl{Name: "gen", KeyW: 8, ValW: 32})
	hoff := b.MetaLoad(packet.MetaHeaderOffset, 32)
	srcOff := b.BinC(ir.Add, hoff, 12)
	src := b.LoadPkt(srcOff, 4)
	slot := b.ConstU(8, 0)
	owner := b.StateRead("owner", slot)
	gen := b.StateRead("gen", slot)
	// Same flow keeps its generation; anyone else evicts and bumps it.
	isOwner := b.Bin(ir.Eq, owner, src)
	nextGen := b.Select(isOwner, gen, b.BinC(ir.Add, gen, 1))
	b.StateWrite("owner", slot, src)
	b.StateWrite("gen", slot, nextGen)
	// Rewritten source: NEWBASE plus the low byte of the generation (a
	// 256-address pool).
	newSrc := b.Bin(ir.Add, b.ConstU(32, uint64(base)), b.BinC(ir.And, nextGen, 0xff))
	b.StorePkt(srcOff, newSrc, 4)
	b.Emit(0)
	return b.Build()
}

// IPRewriter(SNAT NEWSRC) is a simplified source-NAT: it rewrites the
// IPv4 source address to NEWSRC, remembers the original address in its
// mapping table (keyed by the flow hash, as a real NAT's connection
// table would be), and incrementally updates the header checksum. The
// paper names NAT maps as the second canonical mutable data structure.
func IPRewriter(cfg string) (*ir.Program, error) {
	f := fields(cfg)
	if len(f) != 2 || f[0] != "SNAT" {
		return nil, fmt.Errorf("IPRewriter wants: SNAT NEWSRC")
	}
	newSrc, err := parseIP4(f[1])
	if err != nil {
		return nil, err
	}
	b := ir.NewBuilder("IPRewriter", 1, 1)
	b.DeclareState(ir.StateDecl{Name: "natmap", KeyW: 32, ValW: 32, Capacity: 4096})
	hoff := b.MetaLoad(packet.MetaHeaderOffset, 32)
	srcOff := b.BinC(ir.Add, hoff, 12)
	oldSrc := b.LoadPkt(srcOff, 4)
	// Remember the original source for the (not modeled) reverse path.
	b.StateWrite("natmap", oldSrc, oldSrc)
	// Rewrite and patch the checksum one halfword at a time (RFC 1624).
	ck := b.Mov(b.LoadPkt(b.BinC(ir.Add, hoff, 10), 2))
	patch := func(off ir.Reg, newVal uint64) {
		old := b.LoadPkt(off, 2)
		nv := b.ConstU(16, newVal)
		t := b.Bin(ir.Add, b.ZExt(b.Not(ck), 32), b.ZExt(b.Not(old), 32))
		t = b.Bin(ir.Add, t, b.ZExt(nv, 32))
		t = b.Bin(ir.Add, b.BinC(ir.And, t, 0xffff), b.BinC(ir.LShr, t, 16))
		t = b.Bin(ir.Add, b.BinC(ir.And, t, 0xffff), b.BinC(ir.LShr, t, 16))
		b.SetReg(ck, b.Not(b.Trunc(t, 16)))
		b.StorePkt(off, nv, 2)
	}
	patch(srcOff, uint64(newSrc>>16))
	patch(b.BinC(ir.Add, hoff, 14), uint64(newSrc&0xffff))
	b.StorePkt(b.BinC(ir.Add, hoff, 10), ck, 2)
	_ = oldSrc
	b.Emit(0)
	return b.Build()
}
