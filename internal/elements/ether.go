package elements

import (
	"fmt"
	"strconv"
	"strings"

	"vsd/internal/bv"
	"vsd/internal/ir"
	"vsd/internal/packet"
)

// Strip(N) advances the header offset annotation by N bytes, Click's
// way of removing an encapsulation header without copying. It performs
// no bounds check itself — downstream elements that read the packet do,
// which is exactly the kind of cross-element dependency the verifier's
// composition step reasons about.
func Strip(cfg string) (*ir.Program, error) {
	n, err := parseUint(cfg, packet.MaxFrame)
	if err != nil {
		return nil, err
	}
	b := ir.NewBuilder("Strip", 1, 1)
	hoff := b.MetaLoad(packet.MetaHeaderOffset, 32)
	b.MetaStore(packet.MetaHeaderOffset, b.BinC(ir.Add, hoff, n))
	b.Emit(0)
	return b.Build()
}

// Unstrip(N) rewinds the header offset annotation by N bytes.
func Unstrip(cfg string) (*ir.Program, error) {
	n, err := parseUint(cfg, packet.MaxFrame)
	if err != nil {
		return nil, err
	}
	b := ir.NewBuilder("Unstrip", 1, 1)
	hoff := b.MetaLoad(packet.MetaHeaderOffset, 32)
	b.MetaStore(packet.MetaHeaderOffset, b.BinC(ir.Sub, hoff, n))
	b.Emit(0)
	return b.Build()
}

// EtherEncap(ETHERTYPE, SRC, DST) prepends an Ethernet header by
// rewinding the header offset 14 bytes and writing the header fields.
// In isolation the writes are suspect (the offset may rewind past the
// buffer start and fault); in a pipeline where an upstream Strip(14)
// guarantees room, composition discharges the suspicion — the element-
// scale version of the paper's Fig. 2 example.
func EtherEncap(cfg string) (*ir.Program, error) {
	args := splitArgs(cfg)
	if len(args) != 3 {
		return nil, fmt.Errorf("EtherEncap wants ETHERTYPE, SRC, DST")
	}
	etype, err := strconv.ParseUint(strings.TrimPrefix(args[0], "0x"), 16, 16)
	if err != nil {
		return nil, fmt.Errorf("bad ethertype %q", args[0])
	}
	src, err := parseMAC(args[1])
	if err != nil {
		return nil, err
	}
	dst, err := parseMAC(args[2])
	if err != nil {
		return nil, err
	}
	b := ir.NewBuilder("EtherEncap", 1, 1)
	hoff := b.MetaLoad(packet.MetaHeaderOffset, 32)
	newOff := b.BinC(ir.Sub, hoff, packet.EthernetHeaderLen)
	b.MetaStore(packet.MetaHeaderOffset, newOff)
	for i := 0; i < 6; i++ {
		b.StorePkt(b.BinC(ir.Add, newOff, uint64(i)), b.ConstU(8, uint64(dst[i])), 1)
		b.StorePkt(b.BinC(ir.Add, newOff, uint64(6+i)), b.ConstU(8, uint64(src[i])), 1)
	}
	b.StorePkt(b.BinC(ir.Add, newOff, 12), b.ConstU(16, etype), 2)
	b.Emit(0)
	return b.Build()
}

// classifierPattern is one compiled Classifier output: a conjunction of
// (offset, value, mask) byte-window tests, or the catch-all.
type classifierPattern struct {
	catchAll bool
	tests    []classifierTest
}

type classifierTest struct {
	off   uint64
	value []byte
	mask  []byte
}

// parseClassifier parses Click Classifier patterns: comma-separated
// outputs, each a space-separated list of "offset/hexvalue[%hexmask]"
// tests, or "-" for the catch-all.
func parseClassifier(cfg string) ([]classifierPattern, error) {
	args := splitArgs(cfg)
	if len(args) == 0 {
		return nil, fmt.Errorf("Classifier wants at least one pattern")
	}
	out := make([]classifierPattern, 0, len(args))
	for _, arg := range args {
		if arg == "-" {
			out = append(out, classifierPattern{catchAll: true})
			continue
		}
		var p classifierPattern
		for _, test := range fields(arg) {
			offPart, rest, found := strings.Cut(test, "/")
			if !found {
				return nil, fmt.Errorf("bad classifier test %q", test)
			}
			off, err := parseUint(offPart, packet.MaxFrame)
			if err != nil {
				return nil, err
			}
			valPart, maskPart, hasMask := strings.Cut(rest, "%")
			value, err := parseHexBytes(valPart)
			if err != nil {
				return nil, fmt.Errorf("bad classifier value in %q: %v", test, err)
			}
			var mask []byte
			if hasMask {
				mask, err = parseHexBytes(maskPart)
				if err != nil || len(mask) != len(value) {
					return nil, fmt.Errorf("bad classifier mask in %q", test)
				}
			} else {
				mask = make([]byte, len(value))
				for i := range mask {
					mask[i] = 0xff
				}
			}
			p.tests = append(p.tests, classifierTest{off: off, value: value, mask: mask})
		}
		out = append(out, p)
	}
	return out, nil
}

func parseHexBytes(s string) ([]byte, error) {
	s = strings.TrimSpace(s)
	if len(s) == 0 || len(s)%2 != 0 {
		return nil, fmt.Errorf("hex string %q must have even length", s)
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(out); i++ {
		v, err := strconv.ParseUint(s[2*i:2*i+2], 16, 8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}

// Classifier(P0, P1, ..., -) dispatches packets to the output of the
// first matching pattern, Click's byte-window classifier. Packets
// matching no pattern are dropped (as Click does when no catch-all is
// given). Tests are relative to the current header offset. A packet too
// short to contain a tested window simply fails that pattern — length
// is checked before loading, so the classifier itself never faults.
func Classifier(cfg string) (*ir.Program, error) {
	pats, err := parseClassifier(cfg)
	if err != nil {
		return nil, err
	}
	b := ir.NewBuilder("Classifier", 1, len(pats))
	hoff := b.MetaLoad(packet.MetaHeaderOffset, 32)
	plen := b.PktLen()
	// Emit nested if-else: first match wins.
	var emitFrom func(i int)
	emitFrom = func(i int) {
		if i == len(pats) {
			b.Drop()
			return
		}
		p := pats[i]
		if p.catchAll {
			b.Emit(i)
			return
		}
		// Match condition: all windows in range and all masked bytes
		// equal. Length guards are part of the condition so a short
		// packet falls through to the next pattern instead of faulting.
		cond := b.ConstU(1, 1)
		for _, tst := range p.tests {
			end := b.BinC(ir.Add, hoff, tst.off+uint64(len(tst.value)))
			cond = b.Bin(ir.And, cond, b.Bin(ir.Ule, end, plen))
		}
		b.If(cond, func() {
			match := b.ConstU(1, 1)
			for _, tst := range p.tests {
				for i2, val := range tst.value {
					if tst.mask[i2] == 0 {
						continue
					}
					byteReg := b.LoadPkt(b.BinC(ir.Add, hoff, tst.off+uint64(i2)), 1)
					masked := b.BinC(ir.And, byteReg, uint64(tst.mask[i2]))
					match = b.Bin(ir.And, match, b.BinC(ir.Eq, masked, uint64(val&tst.mask[i2])))
				}
			}
			b.If(match, func() { b.Emit(i) }, func() { emitFrom(i + 1) })
		}, func() {
			emitFrom(i + 1)
		})
	}
	emitFrom(0)
	// Builder requires an explicit terminator on the main path even
	// though emitFrom always terminates; a trailing drop is unreachable
	// but harmless.
	b.Drop()
	return b.Build()
}

// CheckLength(MAX) forwards packets no longer than MAX to output 0 and
// longer ones to output 1 (dropped when only one output is connected in
// Click; we always declare two).
func CheckLength(cfg string) (*ir.Program, error) {
	max, err := parseUint(cfg, 1<<31)
	if err != nil {
		return nil, err
	}
	b := ir.NewBuilder("CheckLength", 1, 2)
	plen := b.PktLen()
	b.If(b.BinC(ir.Ule, plen, max), func() { b.Emit(0) }, func() { b.Emit(1) })
	b.Drop()
	return b.Build()
}

// Paint(COLOR) sets the paint annotation.
func Paint(cfg string) (*ir.Program, error) {
	color, err := parseUint(cfg, 255)
	if err != nil {
		return nil, err
	}
	b := ir.NewBuilder("Paint", 1, 1)
	b.MetaStore(packet.MetaPaint, b.ConstU(bv.W8, color))
	b.Emit(0)
	return b.Build()
}
