package packet

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"vsd/internal/bv"
)

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 worked example: 0001 f203 f4f5 f6f7 sums to ddf2 before
	// complement (checksum = ^0xddf2 = 0x220d).
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Errorf("Checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Trailing byte is padded with zero on the right.
	if got, want := Checksum([]byte{0xab}), ^uint16(0xab00); got != want {
		t.Errorf("Checksum odd = %#04x, want %#04x", got, want)
	}
}

func TestChecksumVerifiesToZero(t *testing.T) {
	// A header whose checksum field holds the correct checksum sums to
	// 0xffff (complement zero).
	f := func(raw [20]byte) bool {
		h := append([]byte{}, raw[:]...)
		ck := ChecksumExcluding(h, 10)
		binary.BigEndian.PutUint16(h[10:], ck)
		return Checksum(h) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksumUpdate16MatchesRecompute(t *testing.T) {
	f := func(raw [20]byte, newTTLProto uint16) bool {
		h := append([]byte{}, raw[:]...)
		ck := ChecksumExcluding(h, 10)
		binary.BigEndian.PutUint16(h[10:], ck)
		old := binary.BigEndian.Uint16(h[8:10])
		binary.BigEndian.PutUint16(h[8:10], newTTLProto)
		want := ChecksumExcluding(h, 10)
		got := ChecksumUpdate16(ck, old, newTTLProto)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildIPv4RoundTrip(t *testing.T) {
	buf, err := BuildIPv4(IPv4Spec{
		SrcMAC:   [6]byte{1, 2, 3, 4, 5, 6},
		DstMAC:   [6]byte{7, 8, 9, 10, 11, 12},
		SrcIP:    IP4(10, 0, 0, 1),
		DstIP:    IP4(192, 168, 1, 2),
		TTL:      64,
		Protocol: ProtoUDP,
		Payload:  []byte{0xde, 0xad},
	})
	if err != nil {
		t.Fatal(err)
	}
	eth, err := EthernetAt(buf.Data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eth.Type() != EtherTypeIPv4 {
		t.Errorf("ethertype = %#x", eth.Type())
	}
	ip, err := IPv4At(buf.Data, EthernetHeaderLen)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Version() != 4 || ip.IHL() != 5 {
		t.Errorf("version/ihl = %d/%d", ip.Version(), ip.IHL())
	}
	if ip.Src() != IP4(10, 0, 0, 1) || ip.Dst() != IP4(192, 168, 1, 2) {
		t.Errorf("addresses wrong: %s -> %s", FormatIP4(ip.Src()), FormatIP4(ip.Dst()))
	}
	if ip.TTL() != 64 || ip.Protocol() != ProtoUDP {
		t.Errorf("ttl/proto = %d/%d", ip.TTL(), ip.Protocol())
	}
	if int(ip.TotalLen()) != 22 {
		t.Errorf("total length = %d, want 22", ip.TotalLen())
	}
	want, err := ip.ComputeChecksum()
	if err != nil {
		t.Fatal(err)
	}
	if ip.Checksum() != want {
		t.Errorf("checksum = %#04x, want %#04x", ip.Checksum(), want)
	}
}

func TestBuildIPv4WithOptionsAndBadChecksum(t *testing.T) {
	buf, err := BuildIPv4(IPv4Spec{
		SrcIP: 1, DstIP: 2, TTL: 1, Protocol: ProtoICMP,
		Options:     []byte{1, 1, 1, 0}, // NOP NOP NOP EOL
		BadChecksum: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := IPv4At(buf.Data, EthernetHeaderLen)
	if err != nil {
		t.Fatal(err)
	}
	if ip.IHL() != 6 {
		t.Errorf("ihl = %d, want 6", ip.IHL())
	}
	if got := ip.Options(); len(got) != 4 || got[0] != 1 {
		t.Errorf("options = % x", got)
	}
	want, _ := ip.ComputeChecksum()
	if ip.Checksum() == want {
		t.Error("BadChecksum produced a correct checksum")
	}
	// Odd-length options rejected.
	if _, err := BuildIPv4(IPv4Spec{Options: []byte{1, 1}}); err == nil {
		t.Error("non-multiple-of-4 options accepted")
	}
	// Oversized header rejected.
	if _, err := BuildIPv4(IPv4Spec{Options: make([]byte, 44)}); err == nil {
		t.Error("oversized options accepted")
	}
}

func TestViewsRejectShortBuffers(t *testing.T) {
	short := make([]byte, 10)
	if _, err := EthernetAt(short, 0); err == nil {
		t.Error("EthernetAt accepted a 10-byte buffer")
	}
	if _, err := IPv4At(short, 0); err == nil {
		t.Error("IPv4At accepted a 10-byte buffer")
	}
	if _, err := UDPAt(short, 4); err == nil {
		t.Error("UDPAt accepted an 8-byte window at 4 in a 10-byte buffer")
	}
	if _, err := EthernetAt(make([]byte, 20), -1); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestBufferCloneIsDeep(t *testing.T) {
	b := NewBuffer([]byte{1, 2, 3})
	b.SetMeta(MetaPaint, bv.New(8, 7))
	c := b.Clone()
	c.Data[0] = 9
	c.SetMeta(MetaPaint, bv.New(8, 1))
	if b.Data[0] != 1 || b.Meta[MetaPaint].U != 7 {
		t.Error("Clone shares storage with the original")
	}
}

func TestSetMetaWidthChecked(t *testing.T) {
	b := NewBuffer(nil)
	defer func() {
		if recover() == nil {
			t.Error("SetMeta with wrong width did not panic")
		}
	}()
	b.SetMeta(MetaHeaderOffset, bv.New(8, 1))
}

func TestUDPPorts(t *testing.T) {
	data := make([]byte, 8)
	u, err := UDPAt(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	u.SetSrcPort(1234)
	u.SetDstPort(53)
	if u.SrcPort() != 1234 || u.DstPort() != 53 {
		t.Errorf("ports = %d/%d", u.SrcPort(), u.DstPort())
	}
}

func TestIP4Formatting(t *testing.T) {
	ip := IP4(10, 1, 2, 3)
	if ip != 0x0a010203 {
		t.Errorf("IP4 = %#x", ip)
	}
	if got := FormatIP4(ip); got != "10.1.2.3" {
		t.Errorf("FormatIP4 = %q", got)
	}
}
