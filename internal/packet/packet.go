// Package packet models network packets for the dataplane runtime, the
// traffic generator, and witness construction.
//
// The design follows the layered-view idiom of packet libraries like
// gopacket, scaled to what the verifier needs: a packet is a flat byte
// buffer, and typed views (Ethernet, IPv4, UDP, ...) are cheap windows
// over it that decode on access. Buffers carry Click-style metadata
// annotations keyed by name; the IR's MetaLoad/MetaStore and the
// symbolic executor use the same slot names (see MetaHeaderOffset and
// friends), so a concrete run and a verification run describe the same
// pipeline state.
package packet

import (
	"encoding/binary"
	"fmt"
	"sort"

	"vsd/internal/bv"
)

// Well-known metadata annotation slots shared by the element library.
// The widths are fixed; ir.Builder enforces consistent use.
const (
	// MetaHeaderOffset (32-bit) is the offset of the current header in
	// the buffer. Strip advances it; EtherEncap rewinds it.
	MetaHeaderOffset = "hoff"
	// MetaPaint (8-bit) is Click's paint annotation.
	MetaPaint = "paint"
	// MetaGateway (32-bit) carries the next-hop IP chosen by routing.
	MetaGateway = "gw"
	// MetaPort (8-bit) carries the chosen output port for deferred
	// switching.
	MetaPort = "port"
)

// MetaWidth returns the conventional width of a known annotation slot.
func MetaWidth(slot string) (bv.Width, bool) {
	switch slot {
	case MetaHeaderOffset, MetaGateway:
		return 32, true
	case MetaPaint, MetaPort:
		return 8, true
	}
	return 0, false
}

// Limits used across the verifier and runtime.
const (
	// MinFrame is the smallest frame the generator produces (Ethernet
	// header only; real NICs pad to 60, the verifier is stricter on
	// purpose so short-frame handling is exercised).
	MinFrame = 14
	// MaxFrame is the largest frame considered (standard 1500-byte MTU
	// plus the Ethernet header).
	MaxFrame = 1514
)

// EtherType values used by the element library.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
	EtherTypeVLAN = 0x8100
)

// IP protocol numbers used by the element library.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// Buffer is a packet: raw bytes plus metadata annotations. The verifier
// proves properties over all byte contents; Buffer exists for the
// concrete side (runtime, traces, witnesses).
type Buffer struct {
	Data []byte
	Meta map[string]bv.V
}

// NewBuffer wraps data in a Buffer with empty metadata.
func NewBuffer(data []byte) *Buffer {
	return &Buffer{Data: data, Meta: map[string]bv.V{}}
}

// Clone deep-copies the buffer (packet state is exclusively owned; the
// runtime clones when a concrete run must not disturb the original).
func (b *Buffer) Clone() *Buffer {
	data := make([]byte, len(b.Data))
	copy(data, b.Data)
	c := &Buffer{Data: data, Meta: make(map[string]bv.V, len(b.Meta))}
	for k, v := range b.Meta {
		c.Meta[k] = v
	}
	return c
}

// CopyFrom overwrites b with a deep copy of src, reusing b's data
// capacity and metadata map. It is Clone without the allocations: the
// buffer-pool fast path the dataplane runner uses to process a trace
// without disturbing the originals.
func (b *Buffer) CopyFrom(src *Buffer) {
	if cap(b.Data) < len(src.Data) {
		b.Data = make([]byte, len(src.Data))
	} else {
		b.Data = b.Data[:len(src.Data)]
	}
	copy(b.Data, src.Data)
	if b.Meta == nil {
		b.Meta = make(map[string]bv.V, len(src.Meta))
	} else {
		clear(b.Meta)
	}
	for k, v := range src.Meta {
		b.Meta[k] = v
	}
}

// Len returns the packet length in bytes.
func (b *Buffer) Len() int { return len(b.Data) }

// SetMeta sets an annotation, validating the width of well-known slots.
func (b *Buffer) SetMeta(slot string, v bv.V) {
	if w, ok := MetaWidth(slot); ok && v.W != w {
		panic(fmt.Sprintf("packet: meta %q width %s, want %s", slot, v.W, w))
	}
	b.Meta[slot] = v
}

// HeaderOffset returns the current header offset annotation (0 when
// unset).
func (b *Buffer) HeaderOffset() int {
	if v, ok := b.Meta[MetaHeaderOffset]; ok {
		return int(v.U)
	}
	return 0
}

// ---- slot-indexed metadata ----

// MetaLayout assigns dense integer indices to a fixed set of annotation
// slots, sorted by name. It is the fast path behind the map in Buffer:
// the compiled dataplane tier resolves every MetaLoad/MetaStore to a
// slot index at compile time and carries annotations in a flat uint64
// array plus a presence bitmask, so the per-packet hot loop never
// hashes a string or allocates a map. A layout is built once per
// pipeline from the union of the element programs' declared slots.
type MetaLayout struct {
	names  []string
	widths []bv.Width
	index  map[string]int
}

// MaxMetaSlots bounds a layout so slot presence fits one uint64 mask.
const MaxMetaSlots = 64

// NewMetaLayout builds a layout over the given slot-name -> width set.
// It fails when two sources disagree on a slot's width (callers merge
// per-element declarations; a conflict means the pipeline's elements
// cannot share a metadata array) or when the slot count exceeds
// MaxMetaSlots.
func NewMetaLayout(slots map[string]bv.Width) (*MetaLayout, error) {
	if len(slots) > MaxMetaSlots {
		return nil, fmt.Errorf("packet: %d metadata slots exceed the %d-slot layout limit", len(slots), MaxMetaSlots)
	}
	l := &MetaLayout{index: make(map[string]int, len(slots))}
	for name := range slots {
		l.names = append(l.names, name)
	}
	sort.Strings(l.names)
	l.widths = make([]bv.Width, len(l.names))
	for i, name := range l.names {
		w := slots[name]
		if !w.Valid() {
			return nil, fmt.Errorf("packet: metadata slot %q has invalid width %d", name, w)
		}
		l.index[name] = i
		l.widths[i] = w
	}
	return l, nil
}

// NumSlots returns the number of slots in the layout.
func (l *MetaLayout) NumSlots() int { return len(l.names) }

// Index returns the slot index for name.
func (l *MetaLayout) Index(name string) (int, bool) {
	i, ok := l.index[name]
	return i, ok
}

// Name returns the slot name at index i.
func (l *MetaLayout) Name(i int) string { return l.names[i] }

// Width returns the declared width of slot i.
func (l *MetaLayout) Width(i int) bv.Width { return l.widths[i] }

// Import loads a map-form annotation set into the slot array vals
// (which must have NumSlots entries) and returns the presence bitmask.
// Slots absent from the layout are ignored: by construction no element
// of the pipeline reads or writes them, so they are invisible to
// execution (Export leaves them untouched in the destination map).
// Import performs no allocation.
func (l *MetaLayout) Import(m map[string]bv.V, vals []uint64) uint64 {
	for i := range vals {
		vals[i] = 0
	}
	var present uint64
	for name, v := range m {
		i, ok := l.index[name]
		if !ok {
			continue
		}
		vals[i] = v.U & l.widths[i].Mask()
		present |= 1 << uint(i)
	}
	return present
}

// Export writes the slots marked present back into map form, at the
// layout's declared widths. Existing entries for slots outside the
// layout are preserved.
func (l *MetaLayout) Export(vals []uint64, present uint64, dst map[string]bv.V) {
	for i, name := range l.names {
		if present&(1<<uint(i)) != 0 {
			dst[name] = bv.New(l.widths[i], vals[i])
		}
	}
}

// ---- Ethernet ----

// EthernetHeaderLen is the length of an untagged Ethernet header.
const EthernetHeaderLen = 14

// Ethernet is a view over an Ethernet header at a fixed offset.
type Ethernet struct {
	b   []byte
	off int
}

// EthernetAt returns an Ethernet view at offset off, or an error if the
// buffer is too short.
func EthernetAt(data []byte, off int) (Ethernet, error) {
	if off < 0 || off+EthernetHeaderLen > len(data) {
		return Ethernet{}, fmt.Errorf("packet: ethernet header at %d exceeds %d-byte buffer", off, len(data))
	}
	return Ethernet{b: data, off: off}, nil
}

// Dst returns the destination MAC (6 bytes).
func (e Ethernet) Dst() []byte { return e.b[e.off : e.off+6] }

// Src returns the source MAC (6 bytes).
func (e Ethernet) Src() []byte { return e.b[e.off+6 : e.off+12] }

// Type returns the EtherType.
func (e Ethernet) Type() uint16 { return binary.BigEndian.Uint16(e.b[e.off+12:]) }

// SetType writes the EtherType.
func (e Ethernet) SetType(t uint16) { binary.BigEndian.PutUint16(e.b[e.off+12:], t) }

// ---- IPv4 ----

// IPv4MinHeaderLen and IPv4MaxHeaderLen bound the IPv4 header size.
const (
	IPv4MinHeaderLen = 20
	IPv4MaxHeaderLen = 60
)

// IPv4 is a view over an IPv4 header at a fixed offset.
type IPv4 struct {
	b   []byte
	off int
}

// IPv4At returns an IPv4 view at offset off; it validates only that the
// fixed 20-byte header fits (elements perform their own semantic
// checks — that is the code under verification).
func IPv4At(data []byte, off int) (IPv4, error) {
	if off < 0 || off+IPv4MinHeaderLen > len(data) {
		return IPv4{}, fmt.Errorf("packet: ipv4 header at %d exceeds %d-byte buffer", off, len(data))
	}
	return IPv4{b: data, off: off}, nil
}

// Version returns the IP version nibble.
func (p IPv4) Version() int { return int(p.b[p.off] >> 4) }

// IHL returns the header length in 32-bit words.
func (p IPv4) IHL() int { return int(p.b[p.off] & 0x0f) }

// HeaderLen returns the header length in bytes.
func (p IPv4) HeaderLen() int { return p.IHL() * 4 }

// TotalLen returns the datagram total length field.
func (p IPv4) TotalLen() uint16 { return binary.BigEndian.Uint16(p.b[p.off+2:]) }

// TTL returns the time-to-live field.
func (p IPv4) TTL() uint8 { return p.b[p.off+8] }

// SetTTL writes the time-to-live field.
func (p IPv4) SetTTL(t uint8) { p.b[p.off+8] = t }

// Protocol returns the payload protocol number.
func (p IPv4) Protocol() uint8 { return p.b[p.off+9] }

// Checksum returns the header checksum field.
func (p IPv4) Checksum() uint16 { return binary.BigEndian.Uint16(p.b[p.off+10:]) }

// SetChecksum writes the header checksum field.
func (p IPv4) SetChecksum(c uint16) { binary.BigEndian.PutUint16(p.b[p.off+10:], c) }

// Src returns the source address as a big-endian uint32.
func (p IPv4) Src() uint32 { return binary.BigEndian.Uint32(p.b[p.off+12:]) }

// Dst returns the destination address as a big-endian uint32.
func (p IPv4) Dst() uint32 { return binary.BigEndian.Uint32(p.b[p.off+16:]) }

// SetSrc writes the source address.
func (p IPv4) SetSrc(a uint32) { binary.BigEndian.PutUint32(p.b[p.off+12:], a) }

// SetDst writes the destination address.
func (p IPv4) SetDst(a uint32) { binary.BigEndian.PutUint32(p.b[p.off+16:], a) }

// Options returns the options bytes (after the fixed header, within
// HeaderLen), or nil when IHL <= 5 or the buffer is short.
func (p IPv4) Options() []byte {
	hl := p.HeaderLen()
	if hl <= IPv4MinHeaderLen || p.off+hl > len(p.b) {
		return nil
	}
	return p.b[p.off+IPv4MinHeaderLen : p.off+hl]
}

// ComputeChecksum returns the correct header checksum for the current
// header bytes (checksum field treated as zero).
func (p IPv4) ComputeChecksum() (uint16, error) {
	hl := p.HeaderLen()
	if hl < IPv4MinHeaderLen || p.off+hl > len(p.b) {
		return 0, fmt.Errorf("packet: cannot checksum %d-byte header at %d in %d-byte buffer", hl, p.off, len(p.b))
	}
	return ChecksumExcluding(p.b[p.off:p.off+hl], 10), nil
}

// ---- UDP ----

// UDPHeaderLen is the UDP header size.
const UDPHeaderLen = 8

// UDP is a view over a UDP header at a fixed offset.
type UDP struct {
	b   []byte
	off int
}

// UDPAt returns a UDP view at offset off.
func UDPAt(data []byte, off int) (UDP, error) {
	if off < 0 || off+UDPHeaderLen > len(data) {
		return UDP{}, fmt.Errorf("packet: udp header at %d exceeds %d-byte buffer", off, len(data))
	}
	return UDP{b: data, off: off}, nil
}

// SrcPort returns the source port.
func (u UDP) SrcPort() uint16 { return binary.BigEndian.Uint16(u.b[u.off:]) }

// DstPort returns the destination port.
func (u UDP) DstPort() uint16 { return binary.BigEndian.Uint16(u.b[u.off+2:]) }

// SetSrcPort writes the source port.
func (u UDP) SetSrcPort(p uint16) { binary.BigEndian.PutUint16(u.b[u.off:], p) }

// SetDstPort writes the destination port.
func (u UDP) SetDstPort(p uint16) { binary.BigEndian.PutUint16(u.b[u.off+2:], p) }

// ---- checksum ----

// Checksum computes the RFC 1071 Internet checksum over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// ChecksumExcluding computes the Internet checksum over data with the
// 16-bit field at byte offset skip treated as zero — the usual "zero the
// checksum field before summing" without mutating the input.
func ChecksumExcluding(data []byte, skip int) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		if i == skip {
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if len(data)%2 == 1 && len(data)-1 != skip {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// ChecksumUpdate16 incrementally updates an Internet checksum after a
// 16-bit field changed from old to new (RFC 1624, eqn. 3).
func ChecksumUpdate16(sum, old, new uint16) uint16 {
	c := uint32(^sum) + uint32(^old) + uint32(new)
	for c>>16 != 0 {
		c = c&0xffff + c>>16
	}
	return ^uint16(c)
}

// ---- construction helpers ----

// IPv4Spec describes an IPv4 packet to build.
type IPv4Spec struct {
	SrcMAC, DstMAC [6]byte
	SrcIP, DstIP   uint32
	TTL            uint8
	Protocol       uint8
	Options        []byte // raw option bytes, padded to a 4-byte multiple
	Payload        []byte
	// BadChecksum leaves an incorrect header checksum, for negative
	// tests and adversarial traces.
	BadChecksum bool
}

// BuildIPv4 constructs an Ethernet+IPv4 frame from the spec.
func BuildIPv4(s IPv4Spec) (*Buffer, error) {
	if len(s.Options)%4 != 0 {
		return nil, fmt.Errorf("packet: options length %d not a multiple of 4", len(s.Options))
	}
	hl := IPv4MinHeaderLen + len(s.Options)
	if hl > IPv4MaxHeaderLen {
		return nil, fmt.Errorf("packet: header length %d exceeds %d", hl, IPv4MaxHeaderLen)
	}
	total := hl + len(s.Payload)
	data := make([]byte, EthernetHeaderLen+total)
	copy(data[0:6], s.DstMAC[:])
	copy(data[6:12], s.SrcMAC[:])
	binary.BigEndian.PutUint16(data[12:], EtherTypeIPv4)
	ip := data[EthernetHeaderLen:]
	ip[0] = byte(4<<4 | hl/4)
	binary.BigEndian.PutUint16(ip[2:], uint16(total))
	ip[8] = s.TTL
	ip[9] = s.Protocol
	binary.BigEndian.PutUint32(ip[12:], s.SrcIP)
	binary.BigEndian.PutUint32(ip[16:], s.DstIP)
	copy(ip[IPv4MinHeaderLen:], s.Options)
	copy(ip[hl:], s.Payload)
	ck := ChecksumExcluding(ip[:hl], 10)
	if s.BadChecksum {
		ck ^= 0xffff
	}
	binary.BigEndian.PutUint16(ip[10:], ck)
	return NewBuffer(data), nil
}

// IP4 packs four octets into the uint32 address representation.
func IP4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

// FormatIP4 renders a uint32 address in dotted-quad form.
func FormatIP4(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}
