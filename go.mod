module vsd

go 1.22
