// NAT gateway: stateful elements under verification — the paper's
// data-structure story.
//
// The pipeline combines a NetFlow-style flow counter, a source-NAT
// rewriter, and a per-device packet counter. Private state (flow table,
// NAT map, counter) is modeled exactly as the paper prescribes: a read
// may return any previously written value or the default, and the
// verifier's second phase checks whether "bad" values can actually be
// written.
//
// Two variants are verified:
//   - with the overflow-asserting Counter, the bad value (a saturated
//     count) IS reachable through the element's own writes, so the
//     verifier refuses to certify the pipeline — the paper's
//     counter-overflow cautionary tale;
//   - with the saturating Counter, the suspect is discharged and the
//     gateway is proved crash-free — and then proved functionally
//     correct: a NAT-rewrite spec (DESIGN.md §6) shows every forwarded
//     packet leaves with source 100.64.0.1 and its destination intact.
//
// The multi-packet act (DESIGN.md §8) then proves the fixed gateway
// crash-free for packet sequences of UNBOUNDED length by k-induction,
// and refutes the mapping stability of elements.LeakyNAT — a bug
// invisible to every single-packet property — with a three-packet
// witness replayed on the concrete dataplane.
//
// Run with: go run ./examples/natgateway
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"vsd/internal/click"
	"vsd/internal/dataplane"
	"vsd/internal/elements"
	"vsd/internal/packet"
	"vsd/internal/specs"
	"vsd/internal/verify"
	"vsd/internal/workload"
)

const gateway = `
	src :: InfiniteSource;
	cls :: Classifier(12/0800, -);
	strip :: Strip(14);
	chk :: CheckIPHeader(NOCHECKSUM);
	flow :: NetFlow(1024);
	nat :: IPRewriter(SNAT 100.64.0.1);
	count :: %s;
	out :: EtherEncap(0800, 02:00:00:00:00:01, 02:00:00:00:00:02);

	src -> cls;
	cls [0] -> strip -> chk;
	cls [1] -> Discard;
	chk [0] -> flow -> nat -> count -> out;
	chk [1] -> Discard;
`

func buildGateway(counter string) string {
	out := ""
	for _, line := range []byte(gateway) {
		out += string(line)
	}
	return fmt.Sprintf(out, counter)
}

func main() {
	reg := elements.Default()

	fmt.Println("== variant 1: overflow-asserting Counter ==")
	buggy, err := click.Parse(reg, buildGateway("Counter"))
	if err != nil {
		log.Fatal(err)
	}
	v := verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: 60})
	start := time.Now()
	rep, err := v.CrashFreedom(buggy)
	if err != nil {
		log.Fatal(err)
	}
	if rep.Verified {
		log.Fatal("overflow missed — the data-structure analysis should find it reachable")
	}
	fmt.Printf("REFUSED in %v: the counter's overflow assertion is reachable —\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("its own writes (count+1) can drive the stored value to the maximum.")
	for _, w := range rep.Witnesses {
		fmt.Printf("  suspect path: %s (%s)\n", w.Path, w.Detail)
	}

	fmt.Println()
	fmt.Println("== variant 2: saturating Counter ==")
	fixed, err := click.Parse(reg, buildGateway("Counter(SATURATE)"))
	if err != nil {
		log.Fatal(err)
	}
	v2 := verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: 60})
	start = time.Now()
	rep2, err := v2.CrashFreedom(fixed)
	if err != nil {
		log.Fatal(err)
	}
	if !rep2.Verified {
		for _, w := range rep2.Witnesses {
			fmt.Print(verify.FormatWitness(w))
		}
		log.Fatal("saturating gateway failed to verify")
	}
	fmt.Printf("VERIFIED in %v (stateful suspects discharged: %d)\n",
		time.Since(start).Round(time.Millisecond), rep2.Discharged)

	// Beyond crash freedom: the NAT's functional contract (DESIGN.md §6).
	// Every packet leaving the gateway must carry source 100.64.0.1 with
	// its destination untouched — exactly what the element's
	// configuration promises.
	natSpec, err := specs.NATRewrite("SNAT 100.64.0.1", 14, "nat")
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	frep, err := v2.VerifyFunc(fixed, natSpec)
	if err != nil {
		log.Fatal(err)
	}
	if !frep.Verified {
		fmt.Print(verify.FormatWitness(frep.Witnesses[0]))
		log.Fatal("NAT rewrite spec failed")
	}
	fmt.Printf("spec nat-rewrite: VERIFIED in %v — every forwarded packet leaves as 100.64.0.1, dst preserved\n",
		time.Since(start).Round(time.Millisecond))

	// Multi-packet state (DESIGN.md §8). First the unbounded claim: the
	// saturating gateway is crash-free for packet sequences of ANY
	// length, proved by k-induction over the private state — a statement
	// no bounded exploration can make.
	fmt.Println()
	fmt.Println("== multi-packet state: k-induction and the mapping-leak NAT ==")
	start = time.Now()
	irep, err := v2.SeqCrashFreedom(fixed, verify.SeqOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if !irep.Proved {
		log.Fatalf("induction failed to prove the saturating gateway: %+v", irep)
	}
	fmt.Printf("k-induction: crash freedom PROVED for UNBOUNDED packet sequences (k=%d) in %v\n",
		irep.K, time.Since(start).Round(time.Millisecond))

	// Then the refutation side: swap the NAT for elements.LeakyNAT — a
	// translator that is correct packet by packet and for any
	// uninterrupted flow, but whose single slot is evicted by interloper
	// traffic. No single-packet spec can see the bug; the three-packet
	// sequence A, B, A refutes mapping stability, and the witness
	// replays on the concrete dataplane.
	leakySrc := strings.Replace(buildGateway("Counter(SATURATE)"),
		"IPRewriter(SNAT 100.64.0.1)", "LeakyNAT(100.64.0.0)", 1)
	leaky, err := click.Parse(reg, leakySrc)
	if err != nil {
		log.Fatal(err)
	}
	v3 := verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: 60})
	srep2, err := v3.VerifySeq(leaky, specs.NATMappingStable(14, "nat", 2))
	if err != nil {
		log.Fatal(err)
	}
	if !srep2.Verified {
		log.Fatal("two-packet sequences must verify — the leak needs an interloper in between")
	}
	fmt.Println("LeakyNAT, 2-packet sequences: mapping stability VERIFIED (the bug hides from pairs)")
	start = time.Now()
	srep3, err := v3.VerifySeq(leaky, specs.NATMappingStable(14, "nat", 3))
	if err != nil {
		log.Fatal(err)
	}
	if srep3.Verified || len(srep3.Witnesses) == 0 {
		log.Fatal("three-packet sequences must refute the LeakyNAT")
	}
	w := srep3.Witnesses[0]
	if err := verify.ReplaySeq(leaky, w); err != nil {
		log.Fatalf("witness replay diverged: %v", err)
	}
	fmt.Printf("LeakyNAT, 3-packet sequences: REFUTED in %v — same flow, different translation:\n",
		time.Since(start).Round(time.Millisecond))
	fmt.Print(verify.FormatMultiWitness(w))
	fmt.Println("  replay: the eviction reproduces byte-for-byte on the concrete dataplane")

	// Run traffic through the verified gateway and inspect NAT effects.
	fmt.Println()
	fmt.Println("== forwarding through the verified gateway ==")
	runner := dataplane.NewRunner(fixed)
	g := workload.New(workload.Spec{Seed: 7, Hosts: 16})
	var rewritten int
	for i := 0; i < 1000; i++ {
		buf := g.IPv4()
		res := runner.Process(buf)
		if res.Crash != nil {
			log.Fatalf("verified gateway crashed: %v", res.Crash)
		}
		if ip, err := packet.IPv4At(buf.Data, packet.EthernetHeaderLen); err == nil &&
			ip.Src() == packet.IP4(100, 64, 0, 1) {
			rewritten++
		}
	}
	fmt.Printf("1000 packets processed, %d source-rewritten to 100.64.0.1, 0 crashes\n", rewritten)
	fmt.Print(runner.FormatCounters())
}
