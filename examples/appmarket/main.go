// App market: the paper's third use case — an element marketplace whose
// operator formally certifies third-party packet-processing code before
// customers drop it into their dataplanes.
//
// A vendor submits "TelemetryProbe", an element that samples four bytes
// from each packet. The market's certification harness splices the
// candidate into the customer's pipeline and runs the verifier:
//
//   - submission 1 reads at a fixed offset with no length check; the
//     verifier rejects it with a concrete witness packet, which this
//     example replays to demonstrate the fault the customer was spared;
//   - submission 2 adds the missing check; the verifier certifies it —
//     including a transparency spec (DESIGN.md §6) proving the probe
//     cannot modify traffic — and additionally reports the latency
//     impact (the instruction-bound delta), the "maximum increase in
//     latency" assessment the paper describes for operators;
//   - submission 3 is an element that secretly rewrites packet bytes: it
//     is perfectly crash-free, so only the transparency spec catches it,
//     with a concrete before/after packet pair as rejection evidence.
//
// Run with: go run ./examples/appmarket
package main

import (
	"fmt"
	"log"
	"time"

	"vsd/internal/click"
	"vsd/internal/dataplane"
	"vsd/internal/elements"
	"vsd/internal/ir"
	"vsd/internal/packet"
	"vsd/internal/specs"
	"vsd/internal/verify"
)

// customerPipeline is the deployment the candidate must not disrupt;
// CANDIDATE is replaced by the submitted element.
const customerPipeline = `
	src :: InfiniteSource;
	cls :: Classifier(12/0800, -);
	strip :: Strip(14);
	chk :: CheckIPHeader(NOCHECKSUM);
	probe :: %s;
	rt :: LookupIPRoute(10.0.0.0/8 0, 0.0.0.0/0 1);

	src -> cls;
	cls [0] -> strip -> chk;
	cls [1] -> Discard;
	chk [0] -> probe -> rt;
	chk [1] -> Discard;
	rt [1] -> Discard;
`

// certify runs the market's checks on a candidate element class and
// returns whether it is safe to list, plus the verified pipeline.
func certify(candidate string) (bool, *click.Pipeline, *verify.CrashReport, error) {
	cfg := fmt.Sprintf(customerPipeline, candidate)
	pipeline, err := click.Parse(elements.Default(), cfg)
	if err != nil {
		return false, nil, nil, err
	}
	v := verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: 64})
	rep, err := v.CrashFreedom(pipeline)
	if err != nil {
		return false, nil, nil, err
	}
	return rep.Verified, pipeline, rep, nil
}

// certifyTransparent runs the market's second gate: a telemetry probe
// must be a pure observer. The transparency spec proves the packet
// bytes survive the probe unchanged on every feasible path.
func certifyTransparent(candidate string) (*verify.FuncReport, error) {
	cfg := fmt.Sprintf(customerPipeline, candidate)
	pipeline, err := click.Parse(elements.Default(), cfg)
	if err != nil {
		return nil, err
	}
	v := verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: 64})
	return v.VerifyFunc(pipeline, specs.Transparent(0, 64, "probe"))
}

// baselineBound computes the customer pipeline's instruction bound
// without the candidate, for the latency-impact report.
func boundOf(cfg string) (int64, error) {
	pipeline, err := click.Parse(elements.Default(), cfg)
	if err != nil {
		return 0, err
	}
	v := verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: 64})
	rep, err := v.BoundedInstructions(pipeline)
	if err != nil {
		return 0, err
	}
	return rep.MaxSteps, nil
}

func main() {
	fmt.Println("== submission 1: TelemetryProbe v1 (UnsafeReader) ==")
	start := time.Now()
	ok, pipeline, rep, err := certify("UnsafeReader(60)")
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		log.Fatal("market certified a faulty element — soundness bug")
	}
	fmt.Printf("certification FAILED in %v; the element can crash the customer pipeline.\n",
		time.Since(start).Round(time.Millisecond))
	w := rep.Witnesses[0]
	fmt.Printf("rejection evidence:\n%s", verify.FormatWitness(w))

	fmt.Println("replaying the evidence on the customer's dataplane:")
	runner := dataplane.NewRunner(pipeline)
	res := runner.Process(packet.NewBuffer(append([]byte{}, w.Packet...)))
	if res.Disposition != ir.Crashed {
		log.Fatalf("witness did not crash: %+v", res)
	}
	fmt.Printf("  crash at element %q: %v\n\n", res.CrashAt, res.Crash)

	fmt.Println("== submission 2: TelemetryProbe v2 (FixedReader) ==")
	start = time.Now()
	ok, _, rep, err = certify("FixedReader(60)")
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		for _, w := range rep.Witnesses {
			fmt.Print(verify.FormatWitness(w))
		}
		log.Fatal("fixed element failed certification")
	}
	fmt.Printf("certification PASSED in %v: no packet can crash the pipeline.\n",
		time.Since(start).Round(time.Millisecond))

	start = time.Now()
	trep, err := certifyTransparent("FixedReader(60)")
	if err != nil {
		log.Fatal(err)
	}
	if !trep.Verified {
		fmt.Print(verify.FormatWitness(trep.Witnesses[0]))
		log.Fatal("FixedReader failed the transparency gate")
	}
	fmt.Printf("transparency PASSED in %v: the probe provably cannot modify traffic.\n",
		time.Since(start).Round(time.Millisecond))

	// Latency impact: instruction bound with and without the probe —
	// the operator-facing assessment the paper motivates.
	with, err := boundOf(fmt.Sprintf(customerPipeline, "FixedReader(60)"))
	if err != nil {
		log.Fatal(err)
	}
	without, err := boundOf(fmt.Sprintf(customerPipeline, "Paint(0)"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latency impact: worst case %d IR statements with the probe vs %d with a no-op (+%d)\n",
		with, without, with-without)
	fmt.Println("\nTelemetryProbe v2 is listed on the market.")

	// Submission 3: a "probe" that covertly rewrites the source address.
	// It never crashes, so the paper's crash gate alone would list it —
	// the transparency spec is what catches the tampering.
	fmt.Println("\n== submission 3: TelemetryProbe v3 (covert rewriter) ==")
	ok, _, _, err = certify("IPRewriter(SNAT 192.0.2.9)")
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatal("the rewriter should be crash-free — that gate alone is not enough")
	}
	fmt.Println("crash gate: PASSED (the element is perfectly crash-free)")
	start = time.Now()
	trep, err = certifyTransparent("IPRewriter(SNAT 192.0.2.9)")
	if err != nil {
		log.Fatal(err)
	}
	if trep.Verified {
		log.Fatal("transparency gate certified a tampering element — soundness bug")
	}
	fmt.Printf("transparency FAILED in %v; rejection evidence (before/after):\n%s",
		time.Since(start).Round(time.Millisecond), verify.FormatWitness(trep.Witnesses[0]))
	fmt.Println("\nTelemetryProbe v3 is rejected: it rewrites customer traffic.")
}
