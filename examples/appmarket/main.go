// App market: the paper's third use case — an element marketplace whose
// operator formally certifies third-party packet-processing code before
// customers drop it into their dataplanes.
//
// Since PR 4 the market is built on the batch admission layer
// (DESIGN.md §7): submissions flow through verify.Batch over ONE
// verifier backed by a persistent, content-addressed summary store, the
// same machinery behind `vsdverify -batch` and the vsdserve daemon. The
// customer pipeline's element summaries are computed once and shared by
// every submission — and survive on disk for the next certification
// run, which is what makes a verification *service* (rather than a
// one-shot checker) economical.
//
// A vendor submits "TelemetryProbe", an element that samples four bytes
// from each packet. The market splices each candidate into the
// customer's pipeline and runs the admission batch:
//
//   - submission 1 reads at a fixed offset with no length check; the
//     verifier rejects it with a concrete witness packet, which this
//     example replays to demonstrate the fault the customer was spared;
//   - submission 2 adds the missing check; the verifier certifies it —
//     including a transparency spec (DESIGN.md §6) proving the probe
//     cannot modify traffic — and the verdict's instruction bound,
//     against the no-op baseline's, gives the "maximum increase in
//     latency" assessment the paper describes for operators;
//   - submission 3 is an element that secretly rewrites packet bytes: it
//     is perfectly crash-free, so only the transparency spec catches it,
//     with a concrete before/after packet pair as rejection evidence.
//
// Run with: go run ./examples/appmarket
package main

import (
	"encoding/hex"
	"fmt"
	"log"
	"os"
	"time"

	"vsd/internal/click"
	"vsd/internal/dataplane"
	"vsd/internal/elements"
	"vsd/internal/ir"
	"vsd/internal/packet"
	"vsd/internal/specs"
	"vsd/internal/verify"
)

// customerPipeline is the deployment the candidate must not disrupt;
// CANDIDATE is replaced by the submitted element.
const customerPipeline = `
	src :: InfiniteSource;
	cls :: Classifier(12/0800, -);
	strip :: Strip(14);
	chk :: CheckIPHeader(NOCHECKSUM);
	probe :: %s;
	rt :: LookupIPRoute(10.0.0.0/8 0, 0.0.0.0/0 1);

	src -> cls;
	cls [0] -> strip -> chk;
	cls [1] -> Discard;
	chk [0] -> probe -> rt;
	chk [1] -> Discard;
	rt [1] -> Discard;
`

// spliced parses the customer pipeline with the candidate in place.
func spliced(candidate string) *click.Pipeline {
	p, err := click.Parse(elements.Default(), fmt.Sprintf(customerPipeline, candidate))
	if err != nil {
		log.Fatal(err)
	}
	return p
}

// mustDecode turns a verdict's hex witness packet back into bytes.
func mustDecode(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		log.Fatal(err)
	}
	return b
}

func main() {
	// The market's admission service: one verifier, backed by a
	// persistent summary store — exactly what vsdserve runs behind POST
	// /verify. Every submission below shares the customer pipeline's
	// element summaries through it.
	storeDir, err := os.MkdirTemp("", "appmarket-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeDir)
	store, err := verify.NewDiskStore(storeDir)
	if err != nil {
		log.Fatal(err)
	}
	v := verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: 64, Store: store})

	// The admission batch: three vendor submissions plus the operator's
	// no-op baseline (for the latency-impact report). The transparency
	// gate — a telemetry probe must be a pure observer — rides along as
	// a functional spec on the probe submissions.
	transparent := specs.Transparent(0, 64, "probe")
	items := []verify.BatchItem{
		{Name: "baseline", Pipeline: spliced("Paint(0)")},
		{Name: "telemetry-v1", Pipeline: spliced("UnsafeReader(60)")},
		{Name: "telemetry-v2", Pipeline: spliced("FixedReader(60)"), Specs: []verify.FuncSpec{transparent}},
		{Name: "telemetry-v3", Pipeline: spliced("IPRewriter(SNAT 192.0.2.9)"), Specs: []verify.FuncSpec{transparent}},
	}
	start := time.Now()
	verdicts := v.Batch(items)
	st := v.Stats()
	fmt.Printf("admission batch: %d submissions in %v (engine runs %d, summary cache hits %d)\n\n",
		len(items), time.Since(start).Round(time.Millisecond),
		st.ElementsSummarized, st.SummaryCacheHits)
	byName := map[string]verify.BatchVerdict{}
	for _, vd := range verdicts {
		if vd.Error != "" {
			log.Fatalf("%s: %s", vd.Name, vd.Error)
		}
		byName[vd.Name] = vd
	}

	fmt.Println("== submission 1: TelemetryProbe v1 (UnsafeReader) ==")
	v1 := byName["telemetry-v1"]
	if v1.Certified || v1.CrashFree {
		log.Fatal("market certified a faulty element — soundness bug")
	}
	fmt.Println("certification FAILED; the element can crash the customer pipeline.")
	w := v1.Witnesses[0]
	fmt.Printf("rejection evidence:\n  path:   %s\n  detail: %s\n", w.Path, w.Detail)

	fmt.Println("replaying the evidence on the customer's dataplane:")
	runner := dataplane.NewRunner(items[1].Pipeline)
	res := runner.Process(packet.NewBuffer(mustDecode(w.Packet)))
	if res.Disposition != ir.Crashed {
		log.Fatalf("witness did not crash: %+v", res)
	}
	fmt.Printf("  crash at element %q: %v\n\n", res.CrashAt, res.Crash)

	fmt.Println("== submission 2: TelemetryProbe v2 (FixedReader) ==")
	v2 := byName["telemetry-v2"]
	if !v2.CrashFree {
		log.Fatal("fixed element failed certification")
	}
	fmt.Println("crash gate: PASSED — no packet can crash the pipeline.")
	if !v2.Certified || len(v2.SpecsFailed) > 0 {
		log.Fatal("FixedReader failed the transparency gate")
	}
	fmt.Printf("transparency gate: PASSED (%v) — the probe provably cannot modify traffic.\n", v2.SpecsPassed)

	// Latency impact: the verdicts' instruction bounds, probe vs no-op —
	// the operator-facing assessment the paper motivates (vsdserve
	// reports the same delta against its -baseline pipeline).
	base := byName["baseline"]
	fmt.Printf("latency impact: worst case %d IR statements with the probe vs %d with a no-op (+%d)\n",
		v2.BoundSteps, base.BoundSteps, v2.BoundSteps-base.BoundSteps)
	fmt.Println("\nTelemetryProbe v2 is listed on the market.")

	// Submission 3: a "probe" that covertly rewrites the source address.
	// It never crashes, so the paper's crash gate alone would list it —
	// the transparency spec is what catches the tampering.
	fmt.Println("\n== submission 3: TelemetryProbe v3 (covert rewriter) ==")
	v3 := byName["telemetry-v3"]
	if !v3.CrashFree {
		log.Fatal("the rewriter should be crash-free — that gate alone is not enough")
	}
	fmt.Println("crash gate: PASSED (the element is perfectly crash-free)")
	if v3.Certified {
		log.Fatal("transparency gate certified a tampering element — soundness bug")
	}
	tw := v3.Witnesses[0]
	fmt.Printf("transparency gate: FAILED (%v); rejection evidence (before/after):\n", v3.SpecsFailed)
	fmt.Print(verify.FormatWitness(verify.Witness{
		Packet: mustDecode(tw.Packet),
		Output: mustDecode(tw.Output),
		Path:   tw.Path,
		Detail: tw.Detail,
	}))
	fmt.Println("\nTelemetryProbe v3 is rejected: it rewrites customer traffic.")

	// The service property: a fresh verifier over the same store re-runs
	// the whole batch without a single symbolic-engine run.
	v = verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: 64, Store: store})
	start = time.Now()
	v.Batch(items)
	st = v.Stats()
	if st.ElementsSummarized != 0 {
		log.Fatalf("warm re-certification ran the engine %d times, want 0", st.ElementsSummarized)
	}
	fmt.Printf("\nwarm re-certification of all %d submissions: %v, %d store hits, zero engine runs\n",
		len(items), time.Since(start).Round(time.Millisecond), v.Stats().StoreHits)
}
