// The plain counter overflows after 2^32 packets: no bounded unrolling
// can see it, but the induction's counterexample is a 2-packet sequence
// from a seeded state that replays on the concrete dataplane
// (make seq-smoke, DESIGN.md §8).
src :: InfiniteSource;
cnt :: Counter;
src -> cnt -> Discard;
