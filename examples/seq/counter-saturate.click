// The saturating counter: k-induction proves it crash-free for packet
// sequences of UNBOUNDED length (make seq-smoke, DESIGN.md §8).
src :: InfiniteSource;
cnt :: Counter(SATURATE);
src -> cnt -> Discard;
