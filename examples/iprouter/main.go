// IP router: the pipeline of the paper's "Preliminary Results" — the
// default Click IP-router elements (Classifier, Strip/EtherEncap,
// CheckIPHeader, LookupIPRoute, DecIPTTL, IPOptions) assembled from a
// Click configuration.
//
// The example first verifies the pipeline (crash freedom and the
// instruction bound, reproducing experiments E1 and E2 of this
// repository's EXPERIMENTS.md), then proves the router's functional
// contract — TTL decremented by one, checksum patched per RFC 1624,
// payload untouched (experiment F1) — and forwards a synthetic traffic
// mix through the very same IR the proofs were computed over. As a
// finale it swaps in the deliberately broken BuggyDecIPTTL and shows the
// TTL spec refuting it with an input/output witness pair that the
// concrete dataplane reproduces byte for byte.
//
// Run with: go run ./examples/iprouter
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"
	"time"

	"vsd/internal/click"
	"vsd/internal/dataplane"
	"vsd/internal/elements"
	"vsd/internal/ir"
	"vsd/internal/packet"
	"vsd/internal/specs"
	"vsd/internal/verify"
	"vsd/internal/workload"
)

const config = `
	src :: InfiniteSource;
	cls :: Classifier(12/0800, -);        // IPv4 vs everything else
	strip :: Strip(14);
	chk :: CheckIPHeader(NOCHECKSUM);
	opt :: IPOptions;
	rt :: LookupIPRoute(10.0.0.0/8 0, 192.168.0.0/16 1, 0.0.0.0/0 2);
	ttl :: DecIPTTL;
	encap :: EtherEncap(0800, 02:00:00:00:00:01, 02:00:00:00:00:02);
	bad :: Discard;

	src -> cls;
	cls [0] -> strip -> chk;
	cls [1] -> Discard;
	chk [0] -> opt;
	chk [1] -> bad;
	opt [0] -> rt;
	opt [1] -> bad;
	rt [0] -> ttl;
	rt [1] -> ttl;
	rt [2] -> ttl;
	ttl [0] -> encap;
	ttl [1] -> Discard;
`

func main() {
	pipeline, err := click.Parse(elements.Default(), config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== IP router pipeline (%d elements) ==\n%s\n", len(pipeline.Elements), pipeline)

	// Verification: any packet of 14..64 bytes. (Larger bounds admit
	// longer option areas and scale verification time, not the verdict;
	// the benchmark harness sweeps this.)
	v := verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: 64})
	start := time.Now()
	crash, err := v.CrashFreedom(pipeline)
	if err != nil {
		log.Fatal(err)
	}
	if !crash.Verified {
		for _, w := range crash.Witnesses {
			fmt.Print(verify.FormatWitness(w))
		}
		log.Fatal("router is not crash-free — this is a bug")
	}
	fmt.Printf("crash freedom proved in %v (suspects discharged compositionally)\n",
		time.Since(start).Round(time.Millisecond))

	start = time.Now()
	bound, err := v.BoundedInstructions(pipeline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instruction bound: <= %d IR statements per packet (computed in %v)\n",
		bound.MaxSteps, time.Since(start).Round(time.Millisecond))
	st := v.Stats()
	fmt.Printf("verification work: %d element summaries (%d cache hits), %d segments, %d composed paths, %d solver queries\n\n",
		st.ElementsSummarized, st.SummaryCacheHits, st.SegmentsTotal, st.ComposedPaths, st.SolverQueries)

	// Functional contract: what does forwarding *do* to a packet? The
	// spec library states DecIPTTL's contract (TTL - 1, RFC 1624 patch)
	// and that the payload past the rewritten fields survives untouched
	// (the round-trip window starts after the checksum at bytes 24-25).
	fmt.Println("== functional specs (DESIGN.md §6) ==")
	for _, spec := range []verify.FuncSpec{
		specs.TTLDecrement(14, "encap"),
		specs.ChecksumPatched(14, "encap"),
		specs.StripRoundTrip(26, 64, "encap"),
	} {
		start = time.Now()
		frep, err := v.VerifyFunc(pipeline, spec)
		if err != nil {
			log.Fatal(err)
		}
		if !frep.Verified {
			for _, w := range frep.Witnesses {
				fmt.Print(verify.FormatWitness(w))
			}
			log.Fatalf("spec %s failed on the stock router — this is a bug", frep.Spec)
		}
		fmt.Printf("spec %-18s VERIFIED in %6v (%d obligation(s) proved, %d trivially)\n",
			frep.Spec, time.Since(start).Round(time.Millisecond), frep.Proved, frep.Trivial)
	}
	fmt.Println()

	// Forwarding: the same IR now carries traffic.
	runner := dataplane.NewRunner(pipeline)
	g := workload.New(workload.Spec{Seed: 20260612})
	sum := runner.RunTrace(g.Mix(2000))
	fmt.Printf("== forwarding a 2000-packet synthetic mix ==\n")
	fmt.Printf("forwarded %d, dropped %d, crashed %d\n", sum.Emitted, sum.Dropped, sum.Crashed)
	for egress, count := range sum.PerEgress {
		fmt.Printf("  egress %-12s %5d packets\n", pipeline.EgressName(egress), count)
	}
	fmt.Println()
	fmt.Print(runner.FormatCounters())
	if sum.Crashed != 0 {
		log.Fatal("the verified pipeline crashed — witness machinery would have caught this")
	}
	fmt.Println("\nno crashes, as proved.")

	// Finale: what the specs buy. BuggyDecIPTTL decrements the TTL by
	// two with an internally consistent checksum patch — crash freedom
	// and the checksum spec both hold, so only the TTL contract catches
	// it, with a witness the concrete dataplane confirms byte for byte.
	fmt.Println("\n== swapping in BuggyDecIPTTL (decrements by two) ==")
	buggy, err := click.Parse(elements.Default(),
		strings.Replace(config, "DecIPTTL", "BuggyDecIPTTL", 1))
	if err != nil {
		log.Fatal(err)
	}
	vb := verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: 64})
	brep, err := vb.VerifyFunc(buggy, specs.TTLDecrement(14, "encap"))
	if err != nil {
		log.Fatal(err)
	}
	if brep.Verified {
		log.Fatal("TTL spec verified the buggy router — soundness bug")
	}
	w := brep.Witnesses[0]
	fmt.Printf("spec ttl-decrement: FAILED, as it should —\n%s", verify.FormatWitness(w))

	fmt.Println("replaying the witness on the concrete dataplane:")
	bufw := packet.NewBuffer(append([]byte{}, w.Packet...))
	res := dataplane.NewRunner(buggy).Process(bufw)
	if res.Disposition != ir.Emitted || !bytes.Equal(bufw.Data, w.Output) {
		log.Fatalf("concrete output disagrees with the witness prediction: %+v", res)
	}
	fmt.Printf("  TTL in %d -> out %d; output matches the predicted packet byte for byte\n",
		w.Packet[22], w.Output[22])
}
