// IP router: the pipeline of the paper's "Preliminary Results" — the
// default Click IP-router elements (Classifier, Strip/EtherEncap,
// CheckIPHeader, LookupIPRoute, DecIPTTL, IPOptions) assembled from a
// Click configuration.
//
// The example first verifies the pipeline (crash freedom and the
// instruction bound, reproducing experiments E1 and E2 of this
// repository's EXPERIMENTS.md), then forwards a synthetic traffic mix
// through the very same IR the proofs were computed over.
//
// Run with: go run ./examples/iprouter
package main

import (
	"fmt"
	"log"
	"time"

	"vsd/internal/click"
	"vsd/internal/dataplane"
	"vsd/internal/elements"
	"vsd/internal/packet"
	"vsd/internal/trace"
	"vsd/internal/verify"
)

const config = `
	src :: InfiniteSource;
	cls :: Classifier(12/0800, -);        // IPv4 vs everything else
	strip :: Strip(14);
	chk :: CheckIPHeader(NOCHECKSUM);
	opt :: IPOptions;
	rt :: LookupIPRoute(10.0.0.0/8 0, 192.168.0.0/16 1, 0.0.0.0/0 2);
	ttl :: DecIPTTL;
	encap :: EtherEncap(0800, 02:00:00:00:00:01, 02:00:00:00:00:02);
	bad :: Discard;

	src -> cls;
	cls [0] -> strip -> chk;
	cls [1] -> Discard;
	chk [0] -> opt;
	chk [1] -> bad;
	opt [0] -> rt;
	opt [1] -> bad;
	rt [0] -> ttl;
	rt [1] -> ttl;
	rt [2] -> ttl;
	ttl [0] -> encap;
	ttl [1] -> Discard;
`

func main() {
	pipeline, err := click.Parse(elements.Default(), config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== IP router pipeline (%d elements) ==\n%s\n", len(pipeline.Elements), pipeline)

	// Verification: any packet of 14..64 bytes. (Larger bounds admit
	// longer option areas and scale verification time, not the verdict;
	// the benchmark harness sweeps this.)
	v := verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: 64})
	start := time.Now()
	crash, err := v.CrashFreedom(pipeline)
	if err != nil {
		log.Fatal(err)
	}
	if !crash.Verified {
		for _, w := range crash.Witnesses {
			fmt.Print(verify.FormatWitness(w))
		}
		log.Fatal("router is not crash-free — this is a bug")
	}
	fmt.Printf("crash freedom proved in %v (suspects discharged compositionally)\n",
		time.Since(start).Round(time.Millisecond))

	start = time.Now()
	bound, err := v.BoundedInstructions(pipeline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instruction bound: <= %d IR statements per packet (computed in %v)\n",
		bound.MaxSteps, time.Since(start).Round(time.Millisecond))
	st := v.Stats()
	fmt.Printf("verification work: %d element summaries (%d cache hits), %d segments, %d composed paths, %d solver queries\n\n",
		st.ElementsSummarized, st.SummaryCacheHits, st.SegmentsTotal, st.ComposedPaths, st.SolverQueries)

	// Forwarding: the same IR now carries traffic.
	runner := dataplane.NewRunner(pipeline)
	g := trace.New(trace.Spec{Seed: 20260612})
	sum := runner.RunTrace(g.Mix(2000))
	fmt.Printf("== forwarding a 2000-packet synthetic mix ==\n")
	fmt.Printf("forwarded %d, dropped %d, crashed %d\n", sum.Emitted, sum.Dropped, sum.Crashed)
	for egress, count := range sum.PerEgress {
		fmt.Printf("  egress %-12s %5d packets\n", pipeline.EgressName(egress), count)
	}
	fmt.Println()
	fmt.Print(runner.FormatCounters())
	if sum.Crashed != 0 {
		log.Fatal("the verified pipeline crashed — witness machinery would have caught this")
	}
	fmt.Println("\nno crashes, as proved.")
}
