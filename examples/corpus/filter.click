// Example corpus: a stateless firewall — classifier front end plus an
// IPFilter with a first-match rule list.
src :: InfiniteSource;
cls :: Classifier(12/0800, -);
strip :: Strip(14);
chk :: CheckIPHeader(NOCHECKSUM);
flt :: IPFilter(allow proto udp dport 53, deny dst 10.0.0.0/8, allow proto tcp);

src -> cls;
cls [0] -> strip -> chk;
cls [1] -> Discard;
chk [0] -> flt;
chk [1] -> Discard;
