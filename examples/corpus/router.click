// Example corpus: the paper's evaluation pipeline — the default Click
// IP router (checksum verification off; see EXPERIMENTS.md knobs).
src :: InfiniteSource;
cls :: Classifier(12/0800, -);
strip :: Strip(14);
chk :: CheckIPHeader(NOCHECKSUM);
opt :: IPOptions;
rt :: LookupIPRoute(10.0.0.0/8 0, 192.168.0.0/16 1, 0.0.0.0/0 2);
ttl :: DecIPTTL;
encap :: EtherEncap(0800, 02:00:00:00:00:01, 02:00:00:00:00:02);
bad :: Discard;

src -> cls;
cls [0] -> strip -> chk;
cls [1] -> Discard;
chk [0] -> opt;
chk [1] -> bad;
opt [0] -> rt;
opt [1] -> bad;
rt [0] -> ttl;
rt [1] -> ttl;
rt [2] -> ttl;
ttl [0] -> encap;
ttl [1] -> Discard;
