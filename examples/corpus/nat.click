// Example corpus: a NAT gateway — source-rewriting IPRewriter between
// header check and re-encapsulation (stateful: exercises the
// data-structure model and the bad-value refinement).
src :: InfiniteSource;
cls :: Classifier(12/0800, -);
strip :: Strip(14);
chk :: CheckIPHeader(NOCHECKSUM);
nat :: IPRewriter(SNAT 100.64.0.1);
encap :: EtherEncap(0800, 02:00:00:00:00:01, 02:00:00:00:00:02);

src -> cls;
cls [0] -> strip -> chk;
cls [1] -> Discard;
chk [0] -> nat -> encap;
chk [1] -> Discard;
