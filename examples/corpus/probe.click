// Example corpus: the appmarket customer pipeline with the certified
// telemetry probe spliced in (examples/appmarket submission 2).
src :: InfiniteSource;
cls :: Classifier(12/0800, -);
strip :: Strip(14);
chk :: CheckIPHeader(NOCHECKSUM);
probe :: FixedReader(60);
rt :: LookupIPRoute(10.0.0.0/8 0, 0.0.0.0/0 1);

src -> cls;
cls [0] -> strip -> chk;
cls [1] -> Discard;
chk [0] -> probe -> rt;
chk [1] -> Discard;
rt [1] -> Discard;
