// Quickstart: the paper's Fig. 1 and Fig. 2 walkthrough, end to end.
//
// It builds the two-element toy pipeline from the paper (E1 clamps
// negative inputs, E2 asserts non-negativity), shows that E2 has a
// suspect crashing segment in isolation, proves the composed pipeline
// crash-free, and then demonstrates the failing case: verifying E2
// without E1 yields a concrete witness packet that provably — and, as
// the replay shows, actually — crashes the dataplane.
//
// The last section goes beyond crash freedom: a functional spec
// (verify.FuncSpec, DESIGN.md §6) proves what the pipeline *computes* —
// every packet leaves with its first byte clamped to at least 10 — and
// refutes the same claim about E1 alone, with a concrete input/output
// witness pair.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vsd/internal/click"
	"vsd/internal/dataplane"
	"vsd/internal/elements"
	"vsd/internal/expr"
	"vsd/internal/ir"
	"vsd/internal/packet"
	"vsd/internal/verify"
)

func main() {
	reg := elements.Default()

	fmt.Println("== Step 1: the composed pipeline of the paper's Fig. 2 ==")
	good, err := click.Parse(reg, `
		src :: InfiniteSource;
		e1  :: ToyE1;    // if in < 0 { in = 0 }
		e2  :: ToyE2;    // assert in >= 0; ...
		sink :: Discard;
		src -> e1 -> e2 -> sink;
	`)
	if err != nil {
		log.Fatal(err)
	}
	v := verify.New(verify.Options{MinLen: 1, MaxLen: 64})
	rep, err := v.CrashFreedom(good)
	if err != nil {
		log.Fatal(err)
	}
	st := v.Stats()
	fmt.Printf("segments summarized: %d (suspects in isolation: %d)\n",
		st.SegmentsTotal, st.Suspects)
	fmt.Printf("stitched paths discharged as infeasible: %d\n", st.ComposedInfeasible)
	if rep.Verified {
		fmt.Println("verdict: CRASH-FREE — e3 is unreachable once E1 runs first (the paper's p1/p4)")
	} else {
		fmt.Println("verdict: NOT verified (unexpected!)")
	}

	fmt.Println()
	fmt.Println("== Step 2: E2 without its guard ==")
	bad, err := click.Parse(reg, `
		src :: InfiniteSource;
		e2  :: ToyE2;
		sink :: Discard;
		src -> e2 -> sink;
	`)
	if err != nil {
		log.Fatal(err)
	}
	rep2, err := verify.New(verify.Options{MinLen: 1, MaxLen: 64}).CrashFreedom(bad)
	if err != nil {
		log.Fatal(err)
	}
	if rep2.Verified {
		log.Fatal("E2 alone verified — that would be a soundness bug")
	}
	w := rep2.Witnesses[0]
	fmt.Printf("verdict: NOT crash-free; witness found:\n%s", verify.FormatWitness(w))

	fmt.Println("replaying the witness on the concrete dataplane:")
	runner := dataplane.NewRunner(bad)
	res := runner.Process(packet.NewBuffer(append([]byte{}, w.Packet...)))
	if res.Disposition == ir.Crashed {
		fmt.Printf("  runtime crashed at element %q: %v  — witness confirmed\n", res.CrashAt, res.Crash)
	} else {
		log.Fatalf("witness did not crash the runtime: %+v", res)
	}

	fmt.Println()
	fmt.Println("== Step 3: a functional spec — what does the pipeline compute? ==")
	// E1 clamps negatives to 0 and E2 raises anything below 10 to 10, so
	// the composed pipeline guarantees out[0] >= 10 (signed). State that
	// as a FuncSpec postcondition over the symbolic output packet.
	clamp := verify.FuncSpec{
		Name: "clamp-to-10",
		Post: func(pi *verify.PathInfo) *expr.Expr {
			if !pi.Emitted() {
				return nil
			}
			return expr.Bin(expr.OpSle, expr.Const(8, 10), pi.Out(0, 1))
		},
	}
	chain, err := click.Parse(reg, `src :: InfiniteSource; src -> ToyE1 -> ToyE2;`)
	if err != nil {
		log.Fatal(err)
	}
	rep3, err := verify.New(verify.Options{MinLen: 1, MaxLen: 64}).VerifyFunc(chain, clamp)
	if err != nil {
		log.Fatal(err)
	}
	if !rep3.Verified {
		log.Fatalf("clamp spec failed on E1 -> E2:\n%s", verify.FormatWitness(rep3.Witnesses[0]))
	}
	fmt.Printf("spec %s on E1 -> E2: VERIFIED (%d obligation(s) proved)\n", rep3.Spec, rep3.Proved)

	// The same claim about E1 alone is false — E1 only clamps to 0 — and
	// the verifier refutes it with an input/output pair.
	e1only, err := click.Parse(reg, `src :: InfiniteSource; src -> ToyE1;`)
	if err != nil {
		log.Fatal(err)
	}
	rep4, err := verify.New(verify.Options{MinLen: 1, MaxLen: 64}).VerifyFunc(e1only, clamp)
	if err != nil {
		log.Fatal(err)
	}
	if rep4.Verified {
		log.Fatal("clamp spec verified on E1 alone — that would be a soundness bug")
	}
	fmt.Printf("spec %s on E1 alone: refuted, as expected —\n%s",
		rep4.Spec, verify.FormatWitness(rep4.Witnesses[0]))
}
