// Quickstart: the paper's Fig. 1 and Fig. 2 walkthrough, end to end.
//
// It builds the two-element toy pipeline from the paper (E1 clamps
// negative inputs, E2 asserts non-negativity), shows that E2 has a
// suspect crashing segment in isolation, proves the composed pipeline
// crash-free, and then demonstrates the failing case: verifying E2
// without E1 yields a concrete witness packet that provably — and, as
// the replay shows, actually — crashes the dataplane.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vsd/internal/click"
	"vsd/internal/dataplane"
	"vsd/internal/elements"
	"vsd/internal/ir"
	"vsd/internal/packet"
	"vsd/internal/verify"
)

func main() {
	reg := elements.Default()

	fmt.Println("== Step 1: the composed pipeline of the paper's Fig. 2 ==")
	good, err := click.Parse(reg, `
		src :: InfiniteSource;
		e1  :: ToyE1;    // if in < 0 { in = 0 }
		e2  :: ToyE2;    // assert in >= 0; ...
		sink :: Discard;
		src -> e1 -> e2 -> sink;
	`)
	if err != nil {
		log.Fatal(err)
	}
	v := verify.New(verify.Options{MinLen: 1, MaxLen: 64})
	rep, err := v.CrashFreedom(good)
	if err != nil {
		log.Fatal(err)
	}
	st := v.Stats()
	fmt.Printf("segments summarized: %d (suspects in isolation: %d)\n",
		st.SegmentsTotal, st.Suspects)
	fmt.Printf("stitched paths discharged as infeasible: %d\n", st.ComposedInfeasible)
	if rep.Verified {
		fmt.Println("verdict: CRASH-FREE — e3 is unreachable once E1 runs first (the paper's p1/p4)")
	} else {
		fmt.Println("verdict: NOT verified (unexpected!)")
	}

	fmt.Println()
	fmt.Println("== Step 2: E2 without its guard ==")
	bad, err := click.Parse(reg, `
		src :: InfiniteSource;
		e2  :: ToyE2;
		sink :: Discard;
		src -> e2 -> sink;
	`)
	if err != nil {
		log.Fatal(err)
	}
	rep2, err := verify.New(verify.Options{MinLen: 1, MaxLen: 64}).CrashFreedom(bad)
	if err != nil {
		log.Fatal(err)
	}
	if rep2.Verified {
		log.Fatal("E2 alone verified — that would be a soundness bug")
	}
	w := rep2.Witnesses[0]
	fmt.Printf("verdict: NOT crash-free; witness found:\n%s", verify.FormatWitness(w))

	fmt.Println("replaying the witness on the concrete dataplane:")
	runner := dataplane.NewRunner(bad)
	res := runner.Process(packet.NewBuffer(append([]byte{}, w.Packet...)))
	if res.Disposition == ir.Crashed {
		fmt.Printf("  runtime crashed at element %q: %v  — witness confirmed\n", res.CrashAt, res.Crash)
	} else {
		log.Fatalf("witness did not crash the runtime: %+v", res)
	}
}
