package vsd

import (
	"testing"

	"vsd/internal/dataplane"
	"vsd/internal/experiments"
	"vsd/internal/ir"
	"vsd/internal/packet"
	"vsd/internal/verify"
	"vsd/internal/workload"
)

// TestVerifiedRouterSurvivesAdversarialTraffic is the end-to-end claim
// of the whole repository: prove the pipeline crash-free, then throw
// adversarial traffic at the same code and observe zero crashes.
func TestVerifiedRouterSurvivesAdversarialTraffic(t *testing.T) {
	p := experiments.MustParse(experiments.IPRouterConfig(false))
	v := verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: 40})
	rep, err := v.CrashFreedom(p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatal("router did not verify")
	}
	runner := dataplane.NewRunner(p)
	g := workload.New(workload.Spec{Seed: 1})
	var n int
	for i := 0; i < 3000; i++ {
		var buf *packet.Buffer
		switch i % 3 {
		case 0:
			buf = g.IPv4()
		case 1:
			buf = g.Adversarial()
		default:
			buf = g.Random(256)
		}
		res := runner.Process(buf)
		if res.Disposition == ir.Crashed {
			t.Fatalf("verified router crashed on packet %d at %s: %v", i, res.CrashAt, res.Crash)
		}
		n++
	}
	if n != 3000 {
		t.Fatalf("processed %d packets", n)
	}
}

// TestRejectedElementActuallyCrashes is the dual: when verification
// refuses a pipeline, its witness is a real crash — no false alarms
// survive Step 2.
func TestRejectedElementActuallyCrashes(t *testing.T) {
	p := experiments.MustParse(
		"s :: InfiniteSource; s -> UnsafeReader(30) -> Discard;")
	v := verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: 64})
	rep, err := v.CrashFreedom(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified {
		t.Fatal("unsafe element verified")
	}
	for _, w := range rep.Witnesses {
		runner := dataplane.NewRunner(p)
		res := runner.Process(packet.NewBuffer(append([]byte{}, w.Packet...)))
		if res.Disposition != ir.Crashed {
			t.Fatalf("witness did not crash: %+v", res)
		}
	}
}
