GO ?= go

.PHONY: tier1 build test race bench bench-json examples serve-smoke store-roundtrip seq-smoke chaos-smoke tput-smoke trace-smoke

# tier1 is the repo's gate: everything must build, vet clean, and every
# test pass.
tier1:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the concurrent solver and the parallel verifier under
# the race detector (slow; the parallel walk tests fan out real work).
race:
	$(GO) test -race ./internal/smt ./internal/verify

# bench regenerates the paper's evaluation as Go benchmarks.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# examples runs every example binary end to end: they are executable
# documentation, each one log.Fatals if a proof or replay misbehaves,
# so this doubles as an integration smoke test (CI runs it).
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/iprouter
	$(GO) run ./examples/natgateway
	$(GO) run ./examples/appmarket

# serve-smoke drives the vsdserve admission daemon end to end over real
# HTTP: it binds an ephemeral port, POSTs every corpus pipeline to
# itself, and fails unless all come back certified (CI runs it).
serve-smoke:
	$(GO) run ./cmd/vsdserve -smoke examples/corpus -maxlen 48 -baseline examples/corpus/router.click

# store-roundtrip is the summary-store correctness gate (DESIGN.md §7):
# the example corpus is batch-verified twice against one store
# directory; the second run must perform ZERO Step-1 symbolic-engine
# runs (pure store hits) and print byte-identical verdicts.
STORE_CI_DIR ?= .store-ci
store-roundtrip:
	rm -rf $(STORE_CI_DIR) && mkdir -p $(STORE_CI_DIR)
	$(GO) run ./cmd/vsdverify -batch examples/corpus -maxlen 48 \
		-store $(STORE_CI_DIR)/store -batch-stats $(STORE_CI_DIR)/cold.json > $(STORE_CI_DIR)/cold.jsonl
	$(GO) run ./cmd/vsdverify -batch examples/corpus -maxlen 48 \
		-store $(STORE_CI_DIR)/store -batch-stats $(STORE_CI_DIR)/warm.json > $(STORE_CI_DIR)/warm.jsonl
	diff $(STORE_CI_DIR)/cold.jsonl $(STORE_CI_DIR)/warm.jsonl
	grep -q '"elements_summarized": 0,' $(STORE_CI_DIR)/warm.json
	! grep -q '"store_hits": 0,' $(STORE_CI_DIR)/warm.json
	@echo "store-roundtrip: warm run identical, zero engine runs"

# seq-smoke is the multi-packet verification gate (DESIGN.md §8): the
# k-induction must PROVE the saturating counter crash-free for packet
# sequences of UNBOUNDED length, and must refuse to certify the plain
# counter — whose overflow no affordable unrolling depth can reach —
# with a 2-packet counterexample whose replay on the concrete dataplane
# reproduces the crash byte for byte (CI runs it).
SEQ_CI_DIR ?= .seq-ci
seq-smoke:
	rm -rf $(SEQ_CI_DIR) && mkdir -p $(SEQ_CI_DIR)
	$(GO) run ./cmd/vsdverify -property crash -seq 2 -invariant -maxlen 48 \
		examples/seq/counter-saturate.click > $(SEQ_CI_DIR)/sat.out
	grep -q 'PROVED for UNBOUNDED' $(SEQ_CI_DIR)/sat.out
	! $(GO) run ./cmd/vsdverify -property crash -seq 2 -invariant -maxlen 48 \
		examples/seq/counter-overflow.click > $(SEQ_CI_DIR)/ovf.out
	grep -q 'counterexample to induction' $(SEQ_CI_DIR)/ovf.out
	grep -q 'sequence: 2 packet(s)' $(SEQ_CI_DIR)/ovf.out
	grep -q 'replay: the sequence reproduces byte-for-byte' $(SEQ_CI_DIR)/ovf.out
	@echo "seq-smoke: induction proved the saturating counter and refuted the plain one with a replayed 2-packet witness"

# chaos-smoke is the robustness gate (DESIGN.md §9): a fixed-seed
# fault-injection run over the example corpus through the full service
# stack — clean pass, faulted pass (durable queue, retries, contained
# panics), and a simulated kill -9 replay — asserting zero daemon
# crashes and zero verdict flips; plus the crash-safety and watchdog
# tests under the race detector (CI runs it).
CHAOS_SEED ?= 0xc0ffee
chaos-smoke:
	$(GO) run ./cmd/vsdserve -chaos examples/corpus -chaos-seed $(CHAOS_SEED) -maxlen 48
	$(GO) test -race ./internal/queue ./internal/faultinject
	$(GO) test -race ./internal/verify -run 'Panic|Watchdog|DiskStore'
	@echo "chaos-smoke: zero crashes, zero verdict flips, journal replay converged (seed $(CHAOS_SEED))"

# tput-smoke is the compiled-dataplane gate (DESIGN.md §10): both
# execution tiers forward the same fixed-seed traces through every
# corpus pipeline with the differential oracle demanding identical
# dispositions, egress, bytes, meta, state, and step counts; the
# compile-tier unit tests (step parity, optimizer soundness,
# definitely-assigned analysis) re-run under the race detector, which
# also exercises ProcessBatch's frame pooling for races (CI runs it).
TPUT_SEED ?= 2009
tput-smoke:
	$(GO) run ./cmd/vsdrun -compare -n 20000 -seed $(TPUT_SEED) examples/corpus/router.click
	$(GO) run ./cmd/vsdrun -compare -n 20000 -seed $(TPUT_SEED) -workload adversarial examples/corpus/nat.click
	$(GO) test -race ./internal/dataplane/... -run 'Compare|Compiled|Parity|DefAssign|Batch'
	@echo "tput-smoke: interpreter and compiled VM agreed on every observable (seed $(TPUT_SEED))"

# trace-smoke is the observability gate (DESIGN.md §11): a corpus
# verification is traced end to end, the emitted Chrome trace-event
# JSON must validate (balanced spans, per-obligation SAT events), the
# obligation profiler must render, and the vsdserve smoke re-runs to
# assert /metrics, /stats latency percentiles, and /debug/pprof answer
# (CI runs it).
TRACE_CI_DIR ?= .trace-ci
trace-smoke:
	rm -rf $(TRACE_CI_DIR) && mkdir -p $(TRACE_CI_DIR)
	$(GO) run ./cmd/vsdverify -property crash -maxlen 48 -profile \
		-trace $(TRACE_CI_DIR)/router.trace.json examples/corpus/router.click > $(TRACE_CI_DIR)/verify.out
	$(GO) run ./cmd/vsdverify -validate-trace $(TRACE_CI_DIR)/router.trace.json
	grep -q 'obligation profile:' $(TRACE_CI_DIR)/verify.out
	grep -q '"solve:' $(TRACE_CI_DIR)/router.trace.json
	$(GO) run ./cmd/vsdserve -smoke examples/corpus -maxlen 48 > $(TRACE_CI_DIR)/serve.out
	grep -q '/metrics, /stats, and /debug/pprof answered' $(TRACE_CI_DIR)/serve.out
	@echo "trace-smoke: trace validated, obligation profile rendered, metrics endpoints answered"

# bench-json records the benchmark trajectory: one BENCH_<n>.json per
# PR, so regressions are visible across the history. Override BENCH_OUT
# for the next snapshot.
BENCH_OUT ?= BENCH_9.json
bench-json:
	$(GO) run ./cmd/vsdbench -json > $(BENCH_OUT).tmp && mv $(BENCH_OUT).tmp $(BENCH_OUT)
