GO ?= go

.PHONY: tier1 build test race bench bench-json examples

# tier1 is the repo's gate: everything must build and every test pass.
tier1:
	$(GO) build ./... && $(GO) test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the concurrent solver and the parallel verifier under
# the race detector (slow; the parallel walk tests fan out real work).
race:
	$(GO) test -race ./internal/smt ./internal/verify

# bench regenerates the paper's evaluation as Go benchmarks.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# examples runs every example binary end to end: they are executable
# documentation, each one log.Fatals if a proof or replay misbehaves,
# so this doubles as an integration smoke test (CI runs it).
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/iprouter
	$(GO) run ./examples/natgateway
	$(GO) run ./examples/appmarket

# bench-json records the benchmark trajectory: one BENCH_<n>.json per
# PR, so regressions are visible across the history. Override BENCH_OUT
# for the next snapshot.
BENCH_OUT ?= BENCH_3.json
bench-json:
	$(GO) run ./cmd/vsdbench -json > $(BENCH_OUT).tmp && mv $(BENCH_OUT).tmp $(BENCH_OUT)
