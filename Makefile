GO ?= go

.PHONY: tier1 build test race bench bench-json

# tier1 is the repo's gate: everything must build and every test pass.
tier1:
	$(GO) build ./... && $(GO) test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the concurrent solver and the parallel verifier under
# the race detector (slow; the parallel walk tests fan out real work).
race:
	$(GO) test -race ./internal/smt ./internal/verify

# bench regenerates the paper's evaluation as Go benchmarks.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# bench-json emits BENCH_*.json-compatible records on stdout.
bench-json:
	$(GO) run ./cmd/vsdbench -json
